"""Large-scale sweep points through the sharded simulator, with a gate.

The E14 scaling study tops out where the serial simulator becomes the
bottleneck.  This benchmark pushes the network-size axis into the
10^5-node range by combining the three scaling mechanisms of
DESIGN.md §14:

* fast-routing ring snapshots (``ChordNetwork.build(fast_routing=True)``),
* streaming workload generation (:func:`iter_workload_events`), and
* sharded staged execution of the stream (:func:`repro.sim.shard.run_sharded`).

Two modes:

``python -m repro.bench.scale --verify``
    Differential check at a small ring: the staged executor —
    in-process *and* forked — must produce **bit-identical** simulated
    metrics (hops, messages, per-type traffic, notification digest,
    eviction counts) to the serial
    :func:`~repro.bench.harness.run_standard` reference for all four
    algorithms, in **two configurations**: the stripped engine, and
    the full feature set (sliding window + replication + JFRT)
    exercising the lifted sharded modes of DESIGN.md §15.  Exits
    non-zero on any difference.

``python -m repro.bench.scale --nodes 100000 [--output/--compare]``
    Run one sweep point and (optionally) gate it against a committed
    baseline, mirroring :mod:`repro.bench.macro`: simulated metrics
    must match exactly, wall-clock may drift at most ``--threshold``.
    ``--window/--replication/--jfrt/--evict-every`` compose with the
    scale axes; every report carries a ``resources`` section (peak
    RSS via ``getrusage`` — self *and* forked children — plus
    events/sec and cross-shard exchange records) next to the
    simulated metrics.  ``--append-extra BENCH_sim_scale.json``
    records a one-off large point under the baseline's
    ``extra_points`` list, which the CI gate ignores (EXPERIMENTS
    X3 documents the committed 10^6-node point).

Shard count follows ``REPRO_BENCH_PROCS`` (see
:mod:`repro.bench.parallel`); ``--shards`` overrides it.
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import resource
import sys
import time
from typing import Optional, Sequence

from ..chord.hashing import hash_key_cache_clear
from ..chord.network import ChordNetwork
from ..core.engine import ContinuousQueryEngine, EngineConfig
from ..sim.shard import ShardRunResult, run_sharded
from ..workload.generator import iter_workload_events
from ..workload.schema_gen import synthetic_schema
from .configs import Scale
from .harness import run_standard, workload_for, workload_params_for
from .macro import (
    DEFAULT_THRESHOLD,
    HEADLINE_ALGORITHMS,
    compare_reports,
    speedup_versus,
)
from .rows import SCALE_METRIC_FIELDS, metric_summary
from .parallel import configured_processes, fork_available

#: Name recorded in the JSON so unrelated baselines never compare.
SCALE_BENCH_NAME = "sim-scale-point"

#: Default sweep point: large enough that the serial simulator hurts,
#: small enough for a CI smoke job.
DEFAULT_NODES = 20_000

#: Ring size of the ``--verify`` differential check.
VERIFY_NODES = 512

#: Events per staged epoch (driver → workers → barrier → repeat).
DEFAULT_BATCH_SIZE = 512

#: Serial eviction schedule (events per sweep), matching
#: :func:`repro.bench.harness.run_workload`.
DEFAULT_EVICT_EVERY = 64

#: The ``--verify`` configuration exercising every lifted mode at once:
#: sliding window + replicated rewriters + JFRT (see
#: :func:`repro.sim.shard.shard_capabilities`).
VERIFY_FEATURED = {"window": 240.0, "replication_factor": 2, "jfrt_capacity": 8}


def peak_rss_kb() -> int:
    """Lifetime peak resident set size of this process tree, in KiB.

    ``getrusage`` is zero-dependency and monotone: the max of SELF and
    CHILDREN covers both in-process and forked shard runs.  Linux
    reports ``ru_maxrss`` in KiB; macOS reports bytes.
    """
    self_max = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    children_max = resource.getrusage(resource.RUSAGE_CHILDREN).ru_maxrss
    peak = max(self_max, children_max)
    if sys.platform == "darwin":  # pragma: no cover - platform dependent
        peak //= 1024
    return peak


def scale_point(
    n_nodes: int,
    n_queries: int = 400,
    n_tuples: int = 800,
    domain_size: int = 900,
    zipf_s: float = 0.75,
) -> Scale:
    """A sweep point: the network-size axis moves, the workload holds.

    Keeping the workload fixed isolates what the large rings cost
    (longer routes, bigger build) from what more work costs — the same
    shape as E14's network-size sweep.
    """
    return Scale(
        name=f"scale-{n_nodes}",
        n_nodes=n_nodes,
        n_queries=n_queries,
        n_tuples=n_tuples,
        domain_size=domain_size,
        zipf_s=zipf_s,
    )


def default_shards() -> int:
    """Shard count from ``REPRO_BENCH_PROCS`` (1 = staged in-process)."""
    if not fork_available():  # pragma: no cover - platform dependent
        return 1
    return configured_processes(os.cpu_count() or 1)


def _result_metrics(result: ShardRunResult) -> dict:
    """The invariant-metrics dict, in macro-benchmark vocabulary."""
    return metric_summary(result.to_row(), SCALE_METRIC_FIELDS)


def run_scale_point(
    algorithm: str,
    point: Scale,
    *,
    seed: int = 1,
    shards: Optional[int] = None,
    batch_size: int = DEFAULT_BATCH_SIZE,
    config_overrides: Optional[dict] = None,
    evict_every: int = DEFAULT_EVICT_EVERY,
) -> dict:
    """One algorithm at one sweep point through the full fast path.

    Wall-clock covers everything a bigger ring makes slower — network
    build, query install, sharded stream — reported per phase.
    ``config_overrides`` opens the lifted modes (``window``,
    ``replication_factor``, ``jfrt_capacity``); peak RSS and events/sec
    ride along as *resource* columns, deliberately outside the
    bit-compared metrics (they are machine-dependent).
    """
    if shards is None:
        shards = default_shards()
    params = workload_params_for(point)
    schema = synthetic_schema(params.n_relations, params.attributes_per_relation)
    start = time.perf_counter()
    network = ChordNetwork.build(point.n_nodes, fast_routing=True)
    built = time.perf_counter()
    engine = ContinuousQueryEngine(
        network,
        EngineConfig(
            algorithm=algorithm,
            index_choice="random",
            seed=seed,
            **dict(config_overrides or {}),
        ),
    )
    result = run_sharded(
        engine,
        iter_workload_events(params, schema),
        shards=shards,
        batch_size=batch_size,
        seed=seed,
        evict_every=evict_every,
    )
    wall = time.perf_counter() - start
    return {
        "wall_seconds": wall,
        "build_seconds": built - start,
        "shards": result.shards,
        "metrics": _result_metrics(result),
        "row": result.to_row(),
        "resources": {
            "peak_rss_kb": peak_rss_kb(),
            "events_per_sec": round(result.events / wall, 1) if wall else 0.0,
            "exchange_records": result.exchange_records,
        },
        "features": list(result.features),
    }


def run_scale(
    point: Scale,
    *,
    algorithms: Sequence[str] = HEADLINE_ALGORITHMS,
    seed: int = 1,
    repeats: int = 1,
    shards: Optional[int] = None,
    batch_size: int = DEFAULT_BATCH_SIZE,
    config_overrides: Optional[dict] = None,
    evict_every: int = DEFAULT_EVICT_EVERY,
) -> dict:
    """Run the sweep point for every algorithm; returns the report dict.

    Repeats keep the minimum wall-clock but must agree on the simulated
    metrics, as in :func:`repro.bench.macro.run_macro`.  The engine
    feature knobs are recorded in the report's ``point`` so a baseline
    generated under one configuration can never silently gate another;
    the ``resources`` section (peak RSS, events/sec) is informational
    and excluded from the exact compare.
    """
    overrides = dict(config_overrides or {})
    per_algorithm: dict[str, dict] = {}
    for algorithm in algorithms:
        hash_key_cache_clear()
        best: Optional[dict] = None
        for _ in range(max(1, repeats)):
            sample = run_scale_point(
                algorithm,
                point,
                seed=seed,
                shards=shards,
                batch_size=batch_size,
                config_overrides=overrides,
                evict_every=evict_every,
            )
            if best is None:
                best = sample
            else:
                if sample["metrics"] != best["metrics"]:
                    raise RuntimeError(
                        f"scale benchmark is non-deterministic for "
                        f"{algorithm!r}: repeated runs disagree"
                    )
                if sample["wall_seconds"] < best["wall_seconds"]:
                    best["wall_seconds"] = sample["wall_seconds"]
                    best["build_seconds"] = sample["build_seconds"]
                    best["resources"] = sample["resources"]
            hash_key_cache_clear()
        per_algorithm[algorithm] = best
    total_wall = sum(entry["wall_seconds"] for entry in per_algorithm.values())
    features = next(iter(per_algorithm.values()))["features"] if per_algorithm else []
    return {
        "name": SCALE_BENCH_NAME,
        "point": {
            "n_nodes": point.n_nodes,
            "n_queries": point.n_queries,
            "n_tuples": point.n_tuples,
            "domain_size": point.domain_size,
            "zipf_s": point.zipf_s,
            "batch_size": batch_size,
            "window": overrides.get("window"),
            "replication_factor": overrides.get("replication_factor", 1),
            "jfrt_capacity": overrides.get("jfrt_capacity", 0),
            "evict_every": evict_every,
        },
        "seed": seed,
        "features": features,
        "shards": {name: entry["shards"] for name, entry in per_algorithm.items()},
        "host": {
            "python": platform.python_version(),
            "implementation": platform.python_implementation(),
            "machine": platform.machine(),
            "system": platform.system(),
        },
        "wall_seconds": {
            **{
                name: round(entry["wall_seconds"], 4)
                for name, entry in per_algorithm.items()
            },
            "total": round(total_wall, 4),
        },
        "resources": {
            name: entry["resources"] for name, entry in per_algorithm.items()
        },
        "metrics": {name: entry["metrics"] for name, entry in per_algorithm.items()},
    }


def verify_equivalence(
    *,
    n_nodes: int = VERIFY_NODES,
    algorithms: Sequence[str] = HEADLINE_ALGORITHMS,
    seed: int = 1,
    batch_size: int = 64,
    config_overrides: Optional[dict] = None,
    evict_every: int = DEFAULT_EVICT_EVERY,
) -> list[str]:
    """Differential check: fast path ≡ serial reference, bit for bit.

    For each algorithm the identical seeded workload is replayed three
    ways — serial :func:`run_standard`, staged in-process, staged over
    forked shards — and every simulated metric must agree, including
    the sliding-window eviction count when ``config_overrides`` opens a
    window.  Returns failure messages (empty = equivalent).
    """
    overrides = dict(config_overrides or {})
    point = scale_point(n_nodes)
    workload = workload_for(point)
    problems: list[str] = []
    for algorithm in algorithms:
        reference = run_standard(
            algorithm,
            point,
            config_overrides={"index_choice": "random", **overrides},
            workload=workload,
            seed=seed,
            evict_every=evict_every,
        )
        expected = metric_summary(reference.to_row(), SCALE_METRIC_FIELDS)
        modes = [("staged", 1)]
        if fork_available():
            modes.append(("forked", 4))
        for label, shards in modes:
            network = ChordNetwork.build(point.n_nodes, fast_routing=True)
            engine = ContinuousQueryEngine(
                network,
                EngineConfig(
                    algorithm=algorithm, index_choice="random", seed=seed, **overrides
                ),
            )
            result = run_sharded(
                engine,
                workload,
                shards=shards,
                batch_size=batch_size,
                seed=seed,
                evict_every=evict_every,
            )
            got = _result_metrics(result)
            for metric in expected:
                if got[metric] != expected[metric]:
                    problems.append(
                        f"{algorithm}/{label}: {metric} diverged: "
                        f"serial {expected[metric]!r} != fast {got[metric]!r}"
                    )
    return problems


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.bench.scale",
        description="Large-scale sweep point through the sharded simulator.",
    )
    parser.add_argument(
        "--verify",
        action="store_true",
        help=f"differential check vs the serial simulator at {VERIFY_NODES} nodes",
    )
    parser.add_argument(
        "--nodes", type=int, default=DEFAULT_NODES, help="ring size of the point"
    )
    parser.add_argument("--queries", type=int, default=400)
    parser.add_argument("--tuples", type=int, default=800)
    parser.add_argument(
        "--domain", type=int, default=900, help="join-value domain size"
    )
    parser.add_argument(
        "--window",
        type=float,
        default=None,
        help="sliding window (simulated time units; default unbounded)",
    )
    parser.add_argument(
        "--replication",
        type=int,
        default=1,
        help="attribute-level replication factor (paper §4.7)",
    )
    parser.add_argument(
        "--jfrt",
        type=int,
        default=0,
        help="JFRT cache capacity per rewriter (0 = disabled)",
    )
    parser.add_argument(
        "--evict-every",
        type=int,
        default=DEFAULT_EVICT_EVERY,
        help="events per barrier-aligned eviction sweep (windowed runs)",
    )
    parser.add_argument(
        "--shards",
        type=int,
        default=None,
        help="shard workers (default: REPRO_BENCH_PROCS; 1 = in-process)",
    )
    parser.add_argument(
        "--batch-size",
        type=int,
        default=DEFAULT_BATCH_SIZE,
        help="stream events per staged epoch",
    )
    parser.add_argument(
        "--algorithms",
        default=",".join(HEADLINE_ALGORITHMS),
        help="comma-separated algorithm subset",
    )
    parser.add_argument(
        "--output", default=None, help="write the JSON report to this path"
    )
    parser.add_argument(
        "--compare",
        default=None,
        help="gate against a committed baseline JSON (e.g. BENCH_sim_scale.json)",
    )
    parser.add_argument(
        "--append-extra",
        default=None,
        metavar="PATH",
        help=(
            "record this run under the named baseline's 'extra_points' "
            "list (replacing an entry with the same point), so committed "
            "sweeps can carry large one-off points the CI gate ignores"
        ),
    )
    parser.add_argument(
        "--threshold",
        type=float,
        default=DEFAULT_THRESHOLD,
        help="allowed fractional wall-clock regression (default 0.25)",
    )
    parser.add_argument(
        "--repeats", type=int, default=1, help="timing repeats (min is kept)"
    )
    parser.add_argument("--seed", type=int, default=1, help="workload/engine seed")
    args = parser.parse_args(argv)
    algorithms = tuple(name for name in args.algorithms.split(",") if name)

    if args.verify:
        configurations = [
            ("stripped", {}),
            ("windowed+replicated+jfrt", dict(VERIFY_FEATURED)),
        ]
        for label, overrides in configurations:
            problems = verify_equivalence(
                algorithms=algorithms, seed=args.seed, config_overrides=overrides
            )
            if problems:
                for problem in problems:
                    print(f"VERIFY FAIL [{label}]: {problem}", file=sys.stderr)
                return 1
            print(
                f"verify[{label}]: OK — staged/forked metrics identical to "
                f"serial at {VERIFY_NODES} nodes ({', '.join(algorithms)})",
                file=sys.stderr,
            )
        return 0

    config_overrides = {}
    if args.window is not None:
        config_overrides["window"] = args.window
    if args.replication != 1:
        config_overrides["replication_factor"] = args.replication
    if args.jfrt != 0:
        config_overrides["jfrt_capacity"] = args.jfrt
    point = scale_point(
        args.nodes,
        n_queries=args.queries,
        n_tuples=args.tuples,
        domain_size=args.domain,
    )
    report = run_scale(
        point,
        algorithms=algorithms,
        seed=args.seed,
        repeats=args.repeats,
        shards=args.shards,
        batch_size=args.batch_size,
        config_overrides=config_overrides,
        evict_every=args.evict_every,
    )
    rendered = json.dumps(report, indent=2, sort_keys=False)
    if args.output:
        with open(args.output, "w", encoding="utf-8") as handle:
            handle.write(rendered + "\n")
        print(f"wrote {args.output}", file=sys.stderr)
    else:
        print(rendered)

    if args.append_extra:
        with open(args.append_extra, "r", encoding="utf-8") as handle:
            baseline = json.load(handle)
        extra = baseline.setdefault("extra_points", [])
        extra[:] = [entry for entry in extra if entry.get("point") != report["point"]]
        extra.append(report)
        with open(args.append_extra, "w", encoding="utf-8") as handle:
            handle.write(json.dumps(baseline, indent=2, sort_keys=False) + "\n")
        print(f"appended extra point to {args.append_extra}", file=sys.stderr)

    if args.compare:
        with open(args.compare, "r", encoding="utf-8") as handle:
            baseline = json.load(handle)
        problems = compare_reports(report, baseline, args.threshold)
        ratio = speedup_versus(report, baseline)
        if ratio is not None:
            print(
                f"wall-clock: {report['wall_seconds']['total']:.3f}s vs "
                f"baseline {baseline['wall_seconds']['total']:.3f}s "
                f"({ratio:.2f}x)",
                file=sys.stderr,
            )
        if problems:
            for problem in problems:
                print(f"SCALE GATE FAIL: {problem}", file=sys.stderr)
            return 1
        print(
            "scale gate: OK (metrics identical, wall within threshold)",
            file=sys.stderr,
        )
    return 0


if __name__ == "__main__":  # pragma: no cover - CLI entry point
    raise SystemExit(main())
