"""Stable dict ("row") serialization of benchmark results.

Every consumer of a measured run — the macro-benchmark baseline
(:mod:`repro.bench.macro`), the large-scale sweep gate
(:mod:`repro.bench.scale`) and the experiment database writer
(:mod:`repro.expdb`) — needs the same invariant metrics in the same
vocabulary.  Before this module each of them hand-rolled its own dict;
now :meth:`~repro.bench.harness.RunResult.to_row` /
:meth:`~repro.sim.shard.ShardRunResult.to_row` produce one **stable,
versioned, JSON-safe** row (plain ints/floats/strings/dicts — never
pickled objects), ``from_row`` reconstructs a result carrying the same
metrics, and the helpers here project rows into each consumer's
committed-baseline field set.

Stability contract: the row is what gets persisted (``BENCH_*.json``
baselines, the ``repro.expdb`` SQLite history), so existing keys never
change meaning.  Additions bump :data:`ROW_VERSION`; readers must
tolerate unknown keys.
"""

from __future__ import annotations

import hashlib
from typing import TYPE_CHECKING, Iterable, Mapping

from ..sim.stats import TrafficSnapshot

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..core.engine import ContinuousQueryEngine

#: Version of the row layout produced by ``to_row`` implementations.
ROW_VERSION = 1

#: Metric fields of the committed macro-benchmark baseline
#: (``BENCH_seed.json``) — frozen; the CI gate compares them exactly.
MACRO_METRIC_FIELDS = (
    "hops",
    "messages",
    "stream_hops_by_type",
    "stream_messages_by_type",
    "notifications_delivered",
    "notification_digest",
)

#: Metric fields of the committed scale baseline
#: (``BENCH_sim_scale.json``) — the macro set plus eviction counts.
SCALE_METRIC_FIELDS = MACRO_METRIC_FIELDS + ("evictions",)


def notification_digest(engine: "ContinuousQueryEngine") -> str:
    """A stable SHA-1 digest of every query's delivered answer set.

    Sorted per query and across queries, so delivery order (which may
    legitimately vary with routing internals) never affects the digest
    while any change to the *set* of answers does.
    """
    canonical = sorted(
        (key, sorted((n.join_value_repr, repr(n.row)) for n in batch))
        for key, batch in engine.delivered.items()
    )
    return hashlib.sha1(repr(canonical).encode("utf-8")).hexdigest()


def traffic_to_row(snapshot: TrafficSnapshot) -> dict:
    """One traffic snapshot as a JSON-safe dict with sorted type keys."""
    return {
        "hops": snapshot.hops,
        "messages": snapshot.messages,
        "hops_by_type": dict(sorted(snapshot.hops_by_type.items())),
        "messages_by_type": dict(sorted(snapshot.messages_by_type.items())),
        "messages_dropped": snapshot.messages_dropped,
        "retries": snapshot.retries,
        "messages_delayed": snapshot.messages_delayed,
    }


def traffic_from_row(row: Mapping) -> TrafficSnapshot:
    """Inverse of :func:`traffic_to_row` (unknown keys ignored)."""
    return TrafficSnapshot(
        hops=row["hops"],
        messages=row["messages"],
        hops_by_type=dict(row["hops_by_type"]),
        messages_by_type=dict(row["messages_by_type"]),
        messages_dropped=row.get("messages_dropped", 0),
        retries=row.get("retries", 0),
        messages_delayed=row.get("messages_delayed", 0),
    )


def metric_summary(
    row: Mapping, fields: Iterable[str] = SCALE_METRIC_FIELDS
) -> dict:
    """Project a result row onto a committed baseline's metric fields.

    ``fields`` controls both the selection *and* the key order, so the
    rendered JSON of an existing baseline never changes shape when the
    row itself grows new keys.  Rows that are already summaries (the
    committed baselines carry top-level ``hops``/``messages`` instead
    of traffic snapshots) pass through unchanged, so the projection is
    idempotent.
    """
    empty = {"hops": 0, "messages": 0, "hops_by_type": {}, "messages_by_type": {}}
    install = row.get("install_traffic") or empty
    stream = row.get("stream_traffic") or empty
    full = {
        "hops": row.get("hops", install["hops"] + stream["hops"]),
        "messages": row.get("messages", install["messages"] + stream["messages"]),
        "stream_hops_by_type": dict(
            row.get("stream_hops_by_type", stream["hops_by_type"])
        ),
        "stream_messages_by_type": dict(
            row.get("stream_messages_by_type", stream["messages_by_type"])
        ),
        "notifications_delivered": row["notifications_delivered"],
        "notification_digest": row["notification_digest"],
        "evictions": row.get("evictions", 0),
        "exchange_records": row.get("exchange_records", 0),
    }
    return {name: full[name] for name in fields}
