"""Experiment harness: build a network, replay a workload, measure.

Every benchmark (one per paper table/figure) goes through
:func:`run_workload`, so traffic and load are always measured the same
way:

* *install traffic* — hops spent indexing the continuous queries;
* *stream traffic* — hops spent inserting tuples (including all
  triggered rewriting/reindexing and notification delivery);
* *per-tuple hop series* — hops of each individual insertion, for
  convergence plots such as the JFRT warm-up (Figure 5.2);
* a final :class:`~repro.core.metrics.LoadSnapshot` with the per-node
  filtering/storage vectors.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Optional

from ..chord.network import ChordNetwork
from ..core.engine import ContinuousQueryEngine, EngineConfig
from ..core.metrics import LoadSnapshot
from ..core.oracle import CentralizedOracle
from ..sim.stats import TrafficSnapshot
from ..sql.query import JoinQuery
from .configs import Scale, current_scale
from ..workload.generator import Workload, WorkloadParams, build_workload


@dataclass
class RunResult:
    """Everything a benchmark needs from one workload replay.

    A live result (from :func:`run_workload`) carries the engine and
    workload objects; a result reconstructed from a persisted row
    (:meth:`from_row`) carries only the metrics — the live-only fields
    are ``None`` and the delivered count/digest come from the stored
    columns.
    """

    engine: Optional[ContinuousQueryEngine] = None
    workload: Optional[Workload] = None
    queries: list[JoinQuery] = field(default_factory=list)
    install_traffic: TrafficSnapshot = field(
        default_factory=lambda: TrafficSnapshot(0, 0, {}, {})
    )
    stream_traffic: TrafficSnapshot = field(
        default_factory=lambda: TrafficSnapshot(0, 0, {}, {})
    )
    load: Optional[LoadSnapshot] = None
    per_tuple_hops: list[int] = field(default_factory=list)
    oracle: Optional[CentralizedOracle] = None
    #: Sliding-window items evicted over the replay (0 when unbounded).
    #: Deterministic for a seeded workload, so differential checks can
    #: compare it across execution modes like any other metric.
    evictions: int = 0
    #: Stored delivered-notification count/digest of a reconstructed
    #: row; live results derive both from the engine instead.
    stored_delivered: Optional[int] = None
    stored_digest: Optional[str] = None

    @property
    def hops_per_tuple(self) -> float:
        """Mean overlay hops per tuple insertion in the stream phase."""
        streamed = self.workload.n_tuples if self.workload is not None else 0
        return self.stream_traffic.hops / streamed if streamed else 0.0

    @property
    def hops_per_query(self) -> float:
        """Mean overlay hops per installed query."""
        installed = len(self.queries)
        return self.install_traffic.hops / installed if installed else 0.0

    @property
    def notifications_delivered(self) -> int:
        if self.engine is None:
            return self.stored_delivered or 0
        return sum(len(batch) for batch in self.engine.delivered.values())

    def notification_digest(self) -> str:
        """The canonical answer-set digest (live or reconstructed)."""
        if self.engine is None:
            return self.stored_digest or ""
        from .rows import notification_digest

        return notification_digest(self.engine)

    def to_row(self) -> dict:
        """This result's invariant metrics as a stable JSON-safe dict.

        No live objects (engine, workload, oracle) survive — the row is
        what baselines and the experiment database persist.  See
        :mod:`repro.bench.rows` for the stability contract.
        """
        from .rows import ROW_VERSION, traffic_to_row

        return {
            "row_version": ROW_VERSION,
            "kind": "run",
            "install_traffic": traffic_to_row(self.install_traffic),
            "stream_traffic": traffic_to_row(self.stream_traffic),
            "notifications_delivered": self.notifications_delivered,
            "notification_digest": self.notification_digest(),
            "evictions": self.evictions,
        }

    @classmethod
    def from_row(cls, row: dict) -> "RunResult":
        """Reconstruct a metrics-only result from :meth:`to_row` output."""
        from .rows import traffic_from_row

        return cls(
            install_traffic=traffic_from_row(row["install_traffic"]),
            stream_traffic=traffic_from_row(row["stream_traffic"]),
            evictions=row.get("evictions", 0),
            stored_delivered=row["notifications_delivered"],
            stored_digest=row["notification_digest"],
        )


def make_engine(
    scale: Scale | None = None,
    config: EngineConfig | None = None,
    network: ChordNetwork | None = None,
    injector=None,
) -> ContinuousQueryEngine:
    """A fresh engine over a stable ring of ``scale.n_nodes`` nodes.

    ``injector`` (a :class:`~repro.faults.FaultInjector`) wires a seeded
    fault plan into the ring's router, so sweep harnesses — notably
    :mod:`repro.expdb` — can run faulted points through the standard
    entry points without building the network themselves.
    """
    if scale is None:
        scale = current_scale()
    if network is None:
        network = ChordNetwork.build(scale.n_nodes, injector=injector)
    return ContinuousQueryEngine(network, config)


def workload_params_for(
    scale: Scale | None = None, **overrides
) -> WorkloadParams:
    """The standard workload parameters at the given scale.

    Shared by :func:`workload_for` (materialized events) and the
    streaming large-scale path (:mod:`repro.bench.scale`), so both
    replay the identical seeded event sequence.
    """
    if scale is None:
        scale = current_scale()
    return WorkloadParams(
        n_queries=overrides.pop("n_queries", scale.n_queries),
        n_tuples=overrides.pop("n_tuples", scale.n_tuples),
        domain_size=overrides.pop("domain_size", scale.domain_size),
        zipf_s=overrides.pop("zipf_s", scale.zipf_s),
        **overrides,
    )


def workload_for(
    scale: Scale | None = None, **overrides
) -> Workload:
    """The standard experiment workload at the given scale.

    Keyword overrides are forwarded to
    :class:`~repro.workload.generator.WorkloadParams` (e.g.
    ``bos_ratio=8`` or ``warmup_tuples=500``).
    """
    return build_workload(workload_params_for(scale, **overrides))


def run_workload(
    engine: ContinuousQueryEngine,
    workload: Workload,
    *,
    with_oracle: bool = False,
    collect_per_tuple_hops: bool = False,
    evict_every: int = 64,
    seed: int = 1,
) -> RunResult:
    """Replay a workload against an engine and collect measurements.

    Origin nodes for subscriptions/insertions are drawn uniformly (the
    system model lets every node insert data and pose queries).  When a
    sliding window is configured, value-level state is evicted every
    ``evict_every`` events so storage gauges track the window.
    """
    rng = random.Random(seed)
    oracle = CentralizedOracle(window=engine.config.window) if with_oracle else None
    queries: list[JoinQuery] = []
    per_tuple_hops: list[int] = []

    install_start = engine.traffic.snapshot()
    stream_start = install_start
    in_stream_phase = False
    events_since_evict = 0
    evictions = 0

    for event in workload:
        engine.clock.advance_to(event.time)
        origin = engine.network.random_node(rng)
        if event.kind == "query":
            if in_stream_phase:
                raise ValueError("workloads must install all queries first")
            bound = engine.subscribe(origin, event.payload)
            queries.append(bound)
            if oracle is not None:
                oracle.subscribe(bound)
        else:
            if queries and not in_stream_phase:
                in_stream_phase = True
                stream_start = engine.traffic.snapshot()
            before = engine.traffic.hops if collect_per_tuple_hops else 0
            relation, values = event.payload
            tup = engine.publish(origin, relation, values)
            if collect_per_tuple_hops:
                per_tuple_hops.append(engine.traffic.hops - before)
            if oracle is not None:
                oracle.insert(tup)
        events_since_evict += 1
        if engine.config.window is not None and events_since_evict >= evict_every:
            evictions += engine.evict_expired()
            events_since_evict = 0

    if engine.config.window is not None:
        evictions += engine.evict_expired()
    end = engine.traffic.snapshot()
    install_traffic = _diff(stream_start, install_start)
    stream_traffic = _diff(end, stream_start)
    return RunResult(
        engine=engine,
        workload=workload,
        queries=queries,
        install_traffic=install_traffic,
        stream_traffic=stream_traffic,
        load=engine.load_snapshot(),
        per_tuple_hops=per_tuple_hops,
        oracle=oracle,
        evictions=evictions,
    )


def _diff(later: TrafficSnapshot, earlier: TrafficSnapshot) -> TrafficSnapshot:
    return TrafficSnapshot(
        hops=later.hops - earlier.hops,
        messages=later.messages - earlier.messages,
        hops_by_type={
            key: count - earlier.hops_by_type.get(key, 0)
            for key, count in later.hops_by_type.items()
        },
        messages_by_type={
            key: count - earlier.messages_by_type.get(key, 0)
            for key, count in later.messages_by_type.items()
        },
        messages_dropped=later.messages_dropped - earlier.messages_dropped,
        retries=later.retries - earlier.retries,
        messages_delayed=later.messages_delayed - earlier.messages_delayed,
    )


def run_standard(
    algorithm: str,
    scale: Scale | None = None,
    *,
    config_overrides: Optional[dict] = None,
    workload: Workload | None = None,
    seed: int = 1,
    collect_per_tuple_hops: bool = False,
    evict_every: int = 64,
    injector=None,
    **workload_overrides,
) -> RunResult:
    """One-call experiment: engine + workload + replay.

    Most benchmarks are parameter sweeps around this function.
    """
    if scale is None:
        scale = current_scale()
    config_kwargs = dict(config_overrides or {})
    config = EngineConfig(algorithm=algorithm, seed=seed, **config_kwargs)
    if workload is None:
        workload = workload_for(scale, **workload_overrides)
    engine = make_engine(scale, config, injector=injector)
    return run_workload(
        engine,
        workload,
        seed=seed,
        collect_per_tuple_hops=collect_per_tuple_hops,
        evict_every=evict_every,
    )
