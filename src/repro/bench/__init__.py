"""Experiment harness: scales, workload replay, per-figure experiments."""

from .comparison import run_t1, trace_canonical_example
from .configs import SCALES, Scale, current_scale
from .experiments import ALL_ALGORITHMS, EXPERIMENTS, TWO_LEVEL_ALGORITHMS
from .harness import (
    RunResult,
    make_engine,
    run_standard,
    run_workload,
    workload_for,
)
from .report import ExperimentResult, render_table

__all__ = [
    "ALL_ALGORITHMS",
    "EXPERIMENTS",
    "ExperimentResult",
    "RunResult",
    "SCALES",
    "Scale",
    "TWO_LEVEL_ALGORITHMS",
    "current_scale",
    "make_engine",
    "render_table",
    "run_standard",
    "run_t1",
    "run_workload",
    "trace_canonical_example",
    "workload_for",
]
