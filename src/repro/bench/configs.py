"""Experiment scale profiles.

The paper simulates 10^4 nodes with 10^5 installed queries.  That runs
(slowly) on a laptop in pure Python, so the default profile scales the
numbers down while preserving every shape the experiments assert (who
wins, by what factor, where crossovers fall).  Select a profile with
the ``REPRO_SCALE`` environment variable::

    REPRO_SCALE=paper pytest benchmarks/ --benchmark-only
"""

from __future__ import annotations

import os
from dataclasses import dataclass


@dataclass(frozen=True)
class Scale:
    """Workload sizes of one experiment profile."""

    name: str
    n_nodes: int
    n_queries: int
    n_tuples: int
    domain_size: int
    #: Zipf exponent of attribute values ("highly skewed", §4.3.6);
    #: larger profiles use wider domains and milder skew so that join
    #: selectivity — and with it notification volume — stays realistic.
    zipf_s: float = 0.9

    def scaled(self, *, nodes: float = 1.0, queries: float = 1.0, tuples: float = 1.0) -> "Scale":
        """A derived profile with some axes multiplied (for sweeps)."""
        return Scale(
            name=self.name,
            n_nodes=max(2, int(self.n_nodes * nodes)),
            n_queries=max(1, int(self.n_queries * queries)),
            n_tuples=max(1, int(self.n_tuples * tuples)),
            domain_size=self.domain_size,
            zipf_s=self.zipf_s,
        )


SCALES: dict[str, Scale] = {
    "smoke": Scale("smoke", n_nodes=64, n_queries=80, n_tuples=200, domain_size=60),
    "default": Scale(
        "default",
        n_nodes=256,
        n_queries=400,
        n_tuples=700,
        domain_size=900,
        zipf_s=0.75,
    ),
    "large": Scale(
        "large",
        n_nodes=1024,
        n_queries=2000,
        n_tuples=2500,
        domain_size=4000,
        zipf_s=0.72,
    ),
    "paper": Scale(
        "paper",
        n_nodes=10_000,
        n_queries=100_000,
        n_tuples=50_000,
        domain_size=200_000,
        zipf_s=0.7,
    ),
}


def current_scale(default: str = "default") -> Scale:
    """The profile chosen by ``REPRO_SCALE`` (or ``default``)."""
    name = os.environ.get("REPRO_SCALE", default)
    try:
        return SCALES[name]
    except KeyError:
        raise ValueError(
            f"unknown REPRO_SCALE={name!r}; expected one of {sorted(SCALES)}"
        ) from None
