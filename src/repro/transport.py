"""The Transport seam: one message-passing interface, two substrates.

The query-processing algorithms (Chapter 4) are specified purely in
terms of the extended Chord API of Section 2.3 — ``send(msg, I)``,
``multisend(msg/M, L)`` plus one-hop IP delivery for notifications —
and never care *how* a message reaches ``Successor(I)``.  This module
pins that contract down as an abstract :class:`Transport` so the engine
and the core algorithms run unchanged over either substrate:

* :class:`~repro.chord.routing.Router` — the discrete-event simulator's
  implementation: routing and delivery are synchronous in-process
  calls, every finger-table step is billed as one overlay hop, and the
  optional :class:`~repro.faults.injector.FaultInjector` perturbs the
  final delivery;
* :class:`~repro.net.peer.SocketTransport` — the live implementation:
  the same greedy finger-table forwarding, but every hop is a framed,
  codec-encoded message over a real asyncio TCP connection between
  peer servers (see :mod:`repro.net`).

Algorithms obtain the active transport through
``engine.transport`` (which resolves to ``network.transport``); a
:class:`~repro.chord.network.ChordNetwork` starts out with its router
installed, and :meth:`ChordNetwork.use_transport` swaps in a live one.

Contract notes (normative for implementations):

* ``send`` delivers to ``Successor(ident)`` and returns the recipient
  node; on a stable ring that is the oracle successor.
* ``send_direct`` models one point-to-point IP message to a node whose
  address is already known (notification delivery, JFRT hits); it
  costs one hop (zero when ``source is target``) and is never routed.
* ``multisend`` accepts one message for all identifiers or one message
  per identifier, and returns the recipient per identifier in input
  order.  The recursive variant sweeps the ring clockwise once.
* ``lookup`` resolves ``Successor(ident)`` *without* delivering
  anything, billing its hops to ``account`` (rate probes, §4.3.6).
* Messages must stay semantically immutable in transit: a transport
  may serialize and reconstruct them (the socket transport does), so
  handlers cannot rely on object identity with the sender's copy.

Failure and backpressure semantics (live transports):

* The send methods are synchronous and cannot raise for asynchronous
  delivery failure.  A live transport accounts every posted delivery
  in a cluster-wide in-flight credit ledger and settles it exactly
  once — on handler completion, on retry exhaustion (a typed
  :class:`~repro.errors.DeliveryError` surfaces at the next drain), or
  as an expected casualty of an injected crash.  Work *sources* gate
  on the ledger's credit budget between events; handler cascades never
  block on it.
* Failed attempts are retried with jittered exponential backoff and
  automatic reconnection; a peer suspected dead by the failure
  detector is routed around via ring successors until a probe revives
  it.  Injected wire faults (see :mod:`repro.net.chaos`) are always
  decided before an attempt's clean bytes are written, so retries can
  never duplicate a delivery.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import TYPE_CHECKING, Sequence

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .chord.node import ChordNode
    from .sim.messages import Message


class Transport(ABC):
    """Abstract message transport implementing the Section 2.3 API."""

    @abstractmethod
    def send(
        self, source: "ChordNode", message: "Message", ident: int
    ) -> "ChordNode":
        """Deliver ``message`` to ``Successor(ident)``; return the recipient."""

    @abstractmethod
    def send_direct(
        self, source: "ChordNode", message: "Message", target: "ChordNode"
    ) -> None:
        """One-hop delivery to a node whose address is already known."""

    @abstractmethod
    def multisend(
        self,
        source: "ChordNode",
        messages: "Sequence[Message] | Message",
        idents: Sequence[int],
        *,
        recursive: bool = True,
    ) -> list["ChordNode"]:
        """Deliver ``messages[j]`` to ``Successor(idents[j])`` for all j."""

    @abstractmethod
    def lookup(
        self, origin: "ChordNode", ident: int, *, account: str = "lookup"
    ) -> "ChordNode":
        """Resolve ``Successor(ident)`` without delivering a message."""
