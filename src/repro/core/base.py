"""Shared machinery of the four query-processing algorithms (Chapter 4).

All algorithms follow the same two-level template:

1. a query is indexed at the **attribute level** (one side for SAI,
   both sides for the DAI family) and waits at rewriter nodes;
2. every incoming tuple is indexed at the attribute level (and, except
   under DAI-V, at the value level too);
3. a rewriter receiving a tuple triggers, rewrites and reindexes the
   stored queries toward **value-level** evaluators;
4. evaluators combine rewritten queries with tuples to create
   notifications — *when* they do so is exactly what distinguishes
   SAI / DAI-Q / DAI-T / DAI-V.

This module implements the template; the algorithm classes override the
evaluator placement and the value-level behaviour.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Optional

from ..chord.node import ChordNode
from ..errors import QueryError
from ..sim.messages import (
    ALIndexMessage,
    JoinMessage,
    QueryIndexMessage,
    VLIndexMessage,
)
from ..sim.stats import NodeLoad
from ..sql.query import JoinQuery, RewrittenQuery, rewrite
from ..sql.tuples import DataTuple, ProjectedTuple
from ..sql.expr import canonical_value
from .index_choice import ArrivalStats
from .jfrt import JoinFingersRoutingTable
from .notifications import Notification
from .tables import (
    AttributeLevelQueryTable,
    ProjectionStore,
    QueryGroup,
    StoredQuery,
    ValueLevelQueryTable,
    ValueLevelTupleTable,
)

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .engine import ContinuousQueryEngine


@dataclass
class StorageBreakdown:
    """Per-node storage-load split by role (rewriter vs evaluator)."""

    attribute_level: int
    value_level: int
    parked_notifications: int

    @property
    def total(self) -> int:
        return self.attribute_level + self.value_level + self.parked_notifications


class NodeState:
    """Per-node application state attached to ``ChordNode.app``."""

    def __init__(self, node: ChordNode, jfrt_capacity: int = 0):
        self.node = node
        self.alqt = AttributeLevelQueryTable()
        self.vlqt = ValueLevelQueryTable()
        self.vltt = ValueLevelTupleTable()
        self.projections = ProjectionStore()
        #: Notifications parked for offline subscribers, keyed by
        #: subscriber identifier (routing identifier for handoff).
        self.parked: dict[int, list[Notification]] = {}
        #: Notifications delivered to this node as a subscriber.
        self.inbox: list[Notification] = []
        self.load = NodeLoad()
        #: Tuple-arrival statistics per (relation, attribute) — kept by
        #: rewriters for the index-attribute-choice probes (§4.3.6).
        self.arrivals: dict[tuple[str, str], ArrivalStats] = {}
        self.jfrt: Optional[JoinFingersRoutingTable] = (
            JoinFingersRoutingTable(jfrt_capacity) if jfrt_capacity > 0 else None
        )
        #: Identities of notifications already emitted by this node (the
        #: set semantics of answers; bookkeeping, not storage load).
        self.emitted: set[tuple[str, str, tuple]] = set()

    def storage_breakdown(self) -> StorageBreakdown:
        """Storage load of this node, split by indexing level."""
        parked = sum(len(batch) for batch in self.parked.values())
        return StorageBreakdown(
            attribute_level=len(self.alqt),
            value_level=len(self.vlqt) + len(self.vltt) + len(self.projections),
            parked_notifications=parked,
        )

    def evict_expired(self, cutoff: float) -> int:
        """Sliding-window eviction of value-level state.

        Guarded by :meth:`~repro.core.tables.ValueLevelQueryTable.pending_before`
        peeks: eviction rounds sweep every adopted node, and on large
        rings almost all of them hold nothing old enough to evict.
        """
        total = 0
        if self.vlqt.pending_before(cutoff):
            total += self.vlqt.evict_older_than(cutoff)
        if self.vltt.pending_before(cutoff):
            total += self.vltt.evict_older_than(cutoff)
        if self.projections.pending_before(cutoff):
            total += self.projections.evict_older_than(cutoff)
        return total

    def transfer_to(self, other: "NodeState", should_move) -> int:
        """Move items whose routing identifier satisfies ``should_move``.

        Implements the application side of Chord key handoff on node
        join (partial transfer) and voluntary leave (full transfer).
        """
        moved = 0
        for stored_query in self.alqt.pop_matching(should_move):
            other.alqt.add(stored_query)
            moved += 1
        for stored_rewritten in self.vlqt.pop_matching(should_move):
            other.vlqt.insert_entry(stored_rewritten)
            moved += 1
        for stored_tuple in self.vltt.pop_matching(should_move):
            other.vltt.add(stored_tuple)
            moved += 1
        for stored_projection in self.projections.pop_matching(should_move):
            other.projections.add(stored_projection)
            moved += 1
        for subscriber_ident in list(self.parked):
            if should_move(subscriber_ident):
                batch = self.parked.pop(subscriber_ident)
                other.parked.setdefault(subscriber_ident, []).extend(batch)
                moved += len(batch)
        return moved


def index_side_needed_attributes(query: JoinQuery, label: str) -> tuple[str, ...]:
    """Attributes of side ``label`` a DAI-V projection must carry.

    The projection of a trigger tuple must later satisfy rewritten
    queries of the *opposite* side, which need this side's select
    attributes, join-expression attributes and filter attributes.
    """
    return query.side_needed_attributes[label]


class Algorithm:
    """Template base class for SAI, DAI-Q, DAI-T and DAI-V."""

    #: Short name used in configuration and reports.
    name = "base"
    #: Whether the algorithm can evaluate type-T2 queries (only DAI-V).
    supports_t2 = False
    #: Whether tuples are indexed at the value level (all but DAI-V).
    indexes_tuples_at_value_level = True

    # ------------------------------------------------------------------
    # Query indexing
    # ------------------------------------------------------------------
    def validate_query(self, query: JoinQuery) -> None:
        """Reject queries the algorithm cannot evaluate."""
        if query.query_type == "T2" and not self.supports_t2:
            raise QueryError(
                f"{self.name} only supports type-T1 queries (both join "
                f"sides must be single attributes); use DAI-V for "
                f"{query.key or query!s}"
            )

    def index_labels(
        self, engine: "ContinuousQueryEngine", origin: ChordNode, query: JoinQuery
    ) -> list[str]:
        """Which side(s) the query is indexed under."""
        raise NotImplementedError

    def index_query(
        self,
        engine: "ContinuousQueryEngine",
        origin: ChordNode,
        query: JoinQuery,
        *,
        labels: Optional[list[str]] = None,
        refresh: bool = False,
    ) -> list[str]:
        """Route ``query(q, Id(n), IP(n))`` messages to the rewriter(s).

        With attribute-level replication the query is stored at every
        replica so that no replica misses a triggering tuple.  Returns
        the index side(s) used; lease renewals pass them back in via
        ``labels`` (with ``refresh=True``) so the soft-state refresh
        reaches exactly the rewriters chosen at subscription time.
        """
        self.validate_query(query)
        if labels is None:
            labels = self.index_labels(engine, origin, query)
        idents: list[int] = []
        messages: list[QueryIndexMessage] = []
        for label in labels:
            side = query.side(label)
            attribute = query.index_attribute(label)
            for ident in engine.replication.rewriter_identifiers(
                engine.network.hash, side.relation, attribute
            ):
                idents.append(ident)
                messages.append(
                    QueryIndexMessage(
                        query=query,
                        index_side=label,
                        routing_ident=ident,
                        refresh=refresh,
                    )
                )
        transport = engine.transport
        if len(idents) == 1:
            transport.send(origin, messages[0], idents[0])
        else:
            transport.multisend(
                origin, messages, idents, recursive=engine.config.recursive_multisend
            )
        return labels

    def on_query(
        self, engine: "ContinuousQueryEngine", node: ChordNode, msg: QueryIndexMessage
    ) -> None:
        """Rewriter stores the query in its ALQT (Section 4.3.1).

        Re-installation is idempotent (the ALQT deduplicates); a lease
        renewal that actually restores a missing copy is counted as a
        crash-recovery re-install.
        """
        state = engine.state(node)
        state.load.messages_processed += 1
        _, is_new = state.alqt.add(
            StoredQuery(msg.query, msg.index_side, msg.routing_ident)
        )
        if msg.refresh and is_new:
            state.load.lease_reinstalls += 1

    # ------------------------------------------------------------------
    # Tuple indexing (Section 4.2)
    # ------------------------------------------------------------------
    def index_tuple(
        self,
        engine: "ContinuousQueryEngine",
        origin: ChordNode,
        tup: DataTuple,
        *,
        refresh: bool = False,
    ) -> None:
        """Send the ``al-index``/``vl-index`` messages for every attribute.

        One ``multisend`` ships the full set (``2h`` identifiers, or
        ``h`` under DAI-V which skips the value level).  Crash-recovery
        republication sets ``refresh`` so receivers deduplicate instead
        of double-counting.
        """
        relation = tup.relation
        idents: list[int] = []
        messages: list[Any] = []
        for attribute in relation.attributes:
            a_ident = engine.replication.pick_identifier(
                engine.network.hash, relation.name, attribute, engine.rng
            )
            idents.append(a_ident)
            messages.append(
                ALIndexMessage(tuple=tup, index_attribute=attribute, refresh=refresh)
            )
            if self.indexes_tuples_at_value_level:
                v_ident = engine.network.hash.hash_parts(
                    relation.name, attribute, canonical_value(tup.value(attribute))
                )
                idents.append(v_ident)
                messages.append(
                    VLIndexMessage(tuple=tup, index_attribute=attribute, refresh=refresh)
                )
        engine.transport.multisend(
            origin, messages, idents, recursive=engine.config.recursive_multisend
        )

    # ------------------------------------------------------------------
    # Attribute level: trigger, rewrite, reindex (Section 4.3.2)
    # ------------------------------------------------------------------
    def on_al_index(
        self, engine: "ContinuousQueryEngine", node: ChordNode, msg: ALIndexMessage
    ) -> None:
        state = engine.state(node)
        state.load.messages_processed += 1
        tup = msg.tuple
        relation = tup.relation.name
        attribute = msg.index_attribute
        if not msg.refresh:
            stats = state.arrivals.setdefault((relation, attribute), ArrivalStats())
            stats.record(tup.value(attribute))

        groups = state.alqt.groups_for(relation, attribute)
        if not groups:
            return
        state.load.add_attribute_level(sum(len(group) for group in groups))

        batches: dict[int, tuple[list[RewrittenQuery], list[Any]]] = {}
        sent_by_group: list[tuple[QueryGroup, list[str]]] = []
        for group in groups:
            sent_keys = self._rewrite_group(
                engine, state, group, tup, batches, force_resend=msg.refresh
            )
            if sent_keys:
                sent_by_group.append((group, sent_keys))
        if batches:
            self._dispatch_join_batches(engine, node, batches)
            for group, keys in sent_by_group:
                group.sent_rewritten_keys.update(keys)

    def _rewrite_group(
        self,
        engine: "ContinuousQueryEngine",
        state: NodeState,
        group: QueryGroup,
        tup: DataTuple,
        batches: dict[int, tuple[list[RewrittenQuery], list[Any]]],
        *,
        force_resend: bool = False,
    ) -> list[str]:
        """Trigger one query group with ``tup``; fill evaluator batches.

        Returns the rewritten keys to remember as "sent" (DAI-T only).
        ``force_resend`` bypasses the never-resend memory so republished
        tuples can rebuild evaluator state lost to a crash.
        """
        sent_keys: list[str] = []
        seen_keys: set[str] = set()
        projection: Optional[ProjectedTuple] = None
        pub_time = tup.pub_time
        remembers = self.remembers_sent_keys(engine)
        already_sent = group.sent_rewritten_keys
        wants_projection = self.wants_projection
        evaluator_ident = self.evaluator_ident
        batches_get = batches.get
        for entry in group.entries:
            query = entry.query
            side = query.side(entry.index_label)
            if pub_time < query.insertion_time:
                continue
            if not side.accepts(tup):
                continue
            rewritten = rewrite(query, entry.index_label, tup)
            key = rewritten.key
            if key in seen_keys:
                continue
            seen_keys.add(key)
            if remembers and not force_resend and key in already_sent:
                continue
            ident = evaluator_ident(engine, rewritten)
            batch = batches_get(ident)
            if batch is None:
                batch = batches[ident] = ([], [])
            batch[0].append(rewritten)
            if wants_projection:
                if projection is None:
                    projection = self._group_projection(group, tup)
                batch[1].append(projection)
            sent_keys.append(key)
        return sent_keys if remembers else []

    @staticmethod
    def _group_projection(group: QueryGroup, tup: DataTuple) -> ProjectedTuple:
        """Project the trigger tuple for a whole query group (DAI-V).

        The stored projection must later satisfy the opposite-side
        rewritten queries of *every* query in the group, whose select
        lists can differ, so it carries the union of their needs.
        (Queries subscribed later never match: a pair involving this
        tuple and a younger query fails the ``pubT >= insT`` rule.)
        """
        needed: set[str] = set()
        for entry in group.entries:
            needed.update(
                index_side_needed_attributes(entry.query, entry.index_label)
            )
        return tup.project(tuple(sorted(needed)))

    # Hooks specialized by the algorithms -------------------------------
    #: DAI-V ships a projected trigger tuple with every rewritten query.
    wants_projection = False

    def remembers_sent_keys(self, engine: "ContinuousQueryEngine") -> bool:
        """DAI-T's never-resend optimization (see its docstring)."""
        return False

    def _skip_already_sent(
        self,
        engine: "ContinuousQueryEngine",
        group: QueryGroup,
        rewritten: RewrittenQuery,
    ) -> bool:
        if not self.remembers_sent_keys(engine):
            return False
        return rewritten.key in group.sent_rewritten_keys

    def evaluator_ident(
        self, engine: "ContinuousQueryEngine", rewritten: RewrittenQuery
    ) -> int:
        """The value-level identifier a rewritten query is sent to."""
        raise NotImplementedError

    def _dispatch_join_batches(
        self,
        engine: "ContinuousQueryEngine",
        node: ChordNode,
        batches: dict[int, tuple[list[RewrittenQuery], list[Any]]],
    ) -> None:
        """Ship one ``join()`` message per evaluator (grouping, §4.3.5).

        Identifiers with a valid JFRT entry are served in one hop; the
        rest travel in a single recursive ``multisend`` whose answers
        refresh the JFRT.
        """
        state = engine.state(node)
        transport = engine.transport
        routed_idents: list[int] = []
        routed_messages: list[JoinMessage] = []
        for ident, (rewritten_list, projection_list) in batches.items():
            message = JoinMessage(
                rewritten=tuple(rewritten_list), projections=tuple(projection_list)
            )
            cached = state.jfrt.lookup(ident) if state.jfrt is not None else None
            if cached is not None:
                transport.send_direct(node, message, cached)
            else:
                routed_idents.append(ident)
                routed_messages.append(message)
        if routed_idents:
            targets = transport.multisend(
                node,
                routed_messages,
                routed_idents,
                recursive=engine.config.recursive_multisend,
            )
            if state.jfrt is not None:
                for ident, target in zip(routed_idents, targets):
                    state.jfrt.learn(ident, target)

    # ------------------------------------------------------------------
    # Value level (specialized per algorithm)
    # ------------------------------------------------------------------
    def on_vl_index(
        self, engine: "ContinuousQueryEngine", node: ChordNode, msg: VLIndexMessage
    ) -> None:
        raise NotImplementedError

    def on_join(
        self, engine: "ContinuousQueryEngine", node: ChordNode, msg: JoinMessage
    ) -> None:
        raise NotImplementedError

    # ------------------------------------------------------------------
    # Shared value-level helpers
    # ------------------------------------------------------------------
    @staticmethod
    def _within_window(
        engine: "ContinuousQueryEngine", time_a: float, time_b: float
    ) -> bool:
        """Sliding-window check between the two contributing times.

        A pair joins only when its publication times are at most one
        window apart; the check is symmetric because either side may
        have been stored first.
        """
        window = engine.config.window
        if window is None:
            return True
        return abs(time_b - time_a) <= window

    def _emit(
        self,
        engine: "ContinuousQueryEngine",
        state: NodeState,
        rewritten: RewrittenQuery,
        match,
        trigger_time: float,
    ) -> Optional[Notification]:
        """Create one notification unless its identity was already emitted."""
        row = rewritten.result_row(match)
        identity = (rewritten.original_key, repr(rewritten.required_value), row)
        if identity in state.emitted:
            return None
        state.emitted.add(identity)
        state.load.notifications_created += 1
        return Notification(
            query_key=rewritten.original_key,
            subscriber_ident=rewritten.subscriber.ident,
            row=row,
            join_value_repr=repr(rewritten.required_value),
            trigger_pub_time=trigger_time,
            match_pub_time=match.pub_time,
            created_at=engine.clock.now,
        )

    def _match_rewritten_against_tuples(
        self,
        engine: "ContinuousQueryEngine",
        state: NodeState,
        rewritten: RewrittenQuery,
    ) -> list[Notification]:
        """Evaluate one rewritten query against the local VLTT."""
        candidates = state.vltt.candidates(
            rewritten.relation, rewritten.dis_attribute or "", rewritten.dis_value
        )
        state.load.add_value_level(len(candidates))
        notifications = []
        for stored in candidates:
            if not self._within_window(
                engine, stored.tuple.pub_time, rewritten.trigger_pub_time
            ):
                continue
            if not rewritten.matches(stored.tuple, check_value=False):
                continue
            notification = self._emit(
                engine, state, rewritten, stored.tuple, rewritten.trigger_pub_time
            )
            if notification is not None:
                notifications.append(notification)
        return notifications

    def _match_tuple_against_rewritten(
        self,
        engine: "ContinuousQueryEngine",
        state: NodeState,
        tup: DataTuple,
        attribute: str,
    ) -> list[Notification]:
        """Evaluate an arriving tuple against the local VLQT."""
        candidates = state.vlqt.candidates(
            tup.relation.name, attribute, tup.value(attribute)
        )
        state.load.add_value_level(len(candidates))
        notifications = []
        for entry in candidates:
            if not self._within_window(
                engine, entry.latest_trigger_time, tup.pub_time
            ):
                continue
            if not entry.rewritten.matches(tup, check_value=False):
                continue
            notification = self._emit(
                engine, state, entry.rewritten, tup, entry.latest_trigger_time
            )
            if notification is not None:
                notifications.append(notification)
        return notifications
