"""DAI-Q — notifications are created when rewritten *queries* arrive
(Section 4.4.2).

An evaluator receiving a rewritten query evaluates it against the
locally stored tuples and creates the notifications, but does **not**
store the rewritten query; an arriving tuple is stored but triggers
nothing.  This breaks the duplicate-notification symmetry of
double-attribute indexing: for any tuple pair, exactly the *later*
tuple's attribute-level trigger produces the notification, because only
then is the earlier tuple already stored at the evaluator.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from ..sql.expr import canonical_value
from ..chord.node import ChordNode
from ..sim.messages import JoinMessage, VLIndexMessage
from .dai_base import DoubleAttributeIndex
from .tables import StoredTuple

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .engine import ContinuousQueryEngine


class DAIQuery(DoubleAttributeIndex):
    """The DAI-Q algorithm."""

    name = "dai-q"
    supports_t2 = False
    indexes_tuples_at_value_level = True

    def on_join(
        self, engine: "ContinuousQueryEngine", node: ChordNode, msg: JoinMessage
    ) -> None:
        """Evaluate against stored tuples; do not store the queries."""
        state = engine.state(node)
        state.load.messages_processed += 1
        notifications = []
        for rewritten in msg.rewritten:
            notifications.extend(
                self._match_rewritten_against_tuples(engine, state, rewritten)
            )
        engine.deliver_notifications(node, notifications)

    def on_vl_index(
        self, engine: "ContinuousQueryEngine", node: ChordNode, msg: VLIndexMessage
    ) -> None:
        """Store the tuple so it is available when rewritten queries
        arrive; create no notifications (that would duplicate the ones
        the other rewriter produces).  Republished tuples
        (``msg.refresh``) are stored only when missing."""
        state = engine.state(node)
        state.load.messages_processed += 1
        if msg.refresh and state.vltt.contains(msg.tuple, msg.index_attribute):
            return
        ident = engine.network.hash.hash_parts(
            msg.tuple.relation.name,
            msg.index_attribute,
            canonical_value(msg.tuple.value(msg.index_attribute)),
        )
        state.vltt.add(StoredTuple(msg.tuple, msg.index_attribute, ident))
