"""The paper's contribution: continuous equi-join evaluation over DHTs.

Four algorithms (SAI, DAI-Q, DAI-T, DAI-V) built on a shared two-level
indexing template, plus the optimizations of Section 4.7 (JFRT,
attribute-level replication) and the load metrics of Chapter 5.
"""

from .base import Algorithm, NodeState, StorageBreakdown
from .dai_q import DAIQuery
from .dai_t import DAITuple
from .dai_v import DAIValue
from .engine import ALGORITHMS, ContinuousQueryEngine, EngineConfig, make_algorithm
from .index_choice import (
    ArrivalStats,
    IndexChoiceStrategy,
    MaxRateChoice,
    MinRateChoice,
    RandomChoice,
    UniformityChoice,
    make_strategy,
)
from .jfrt import JoinFingersRoutingTable
from .metrics import LoadSnapshot, snapshot
from .multiway import (
    MultiwaySubscription,
    brute_force_rows,
    subscribe_multiway,
)
from .notifications import Notification, group_by_subscriber
from .oracle import CentralizedOracle
from .replication import ReplicationScheme
from .sai import SingleAttributeIndex

__all__ = [
    "ALGORITHMS",
    "Algorithm",
    "ArrivalStats",
    "CentralizedOracle",
    "ContinuousQueryEngine",
    "DAIQuery",
    "DAITuple",
    "DAIValue",
    "EngineConfig",
    "IndexChoiceStrategy",
    "JoinFingersRoutingTable",
    "LoadSnapshot",
    "MaxRateChoice",
    "MinRateChoice",
    "MultiwaySubscription",
    "NodeState",
    "Notification",
    "RandomChoice",
    "ReplicationScheme",
    "SingleAttributeIndex",
    "StorageBreakdown",
    "UniformityChoice",
    "brute_force_rows",
    "group_by_subscriber",
    "make_algorithm",
    "make_strategy",
    "snapshot",
    "subscribe_multiway",
]
