"""SAI — the single-attribute index algorithm (Section 4.3).

A query is indexed under **one** of its two join attributes (the choice
strategy is configurable, Section 4.3.6), so it has exactly one
rewriter.  Evaluators store **both** rewritten queries (VLQT) and
tuples (VLTT):

* a rewritten query arriving at an evaluator is matched against stored
  tuples, then stored so future tuples can trigger it;
* a tuple arriving at the value level is matched against stored
  rewritten queries, then stored — "storing tuples at the value level
  is necessary for the completeness of SAI".

A rewritten query whose key is already stored only refreshes the
stored entry's time information and is *not* re-evaluated ("x need
only store the information related to tuple t"); the identical answer
rows were produced when the first copy arrived.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from ..sql.expr import canonical_value
from ..chord.node import ChordNode
from ..sim.messages import JoinMessage, VLIndexMessage
from ..sql.query import JoinQuery, RewrittenQuery
from .base import Algorithm
from .tables import StoredTuple

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .engine import ContinuousQueryEngine


class SingleAttributeIndex(Algorithm):
    """The SAI algorithm."""

    name = "sai"
    supports_t2 = False
    indexes_tuples_at_value_level = True

    def index_labels(
        self, engine: "ContinuousQueryEngine", origin: ChordNode, query: JoinQuery
    ) -> list[str]:
        """One side, picked by the configured choice strategy."""
        return [engine.index_choice.choose(engine, origin, query)]

    def evaluator_ident(
        self, engine: "ContinuousQueryEngine", rewritten: RewrittenQuery
    ) -> int:
        """``VIndex = Hash(DisR + DisA + valDA)`` (Section 4.3.2)."""
        return engine.network.hash.hash_parts(
            rewritten.relation, rewritten.dis_attribute, rewritten.dis_value
        )

    def on_join(
        self, engine: "ContinuousQueryEngine", node: ChordNode, msg: JoinMessage
    ) -> None:
        """Store each rewritten query; match the new ones against VLTT.

        A key seen before only refreshes its stored time — unless the
        stored entry had already slid out of the window, in which case
        the arrival behaves like a fresh one (its pairs with recently
        stored tuples have not been produced yet).
        """
        state = engine.state(node)
        state.load.messages_processed += 1
        window = engine.config.window
        notifications = []
        # Batches are grouped per evaluator identifier (§4.3.5), so every
        # rewritten query in the message shares the same ident.
        ident = None
        for rewritten in msg.rewritten:
            if ident is None:
                ident = self.evaluator_ident(engine, rewritten)
            previous = state.vlqt.peek(rewritten)
            was_expired = (
                previous is not None
                and window is not None
                and rewritten.trigger_pub_time - previous.latest_trigger_time > window
            )
            _, is_new = state.vlqt.add(rewritten, ident)
            if is_new or was_expired:
                notifications.extend(
                    self._match_rewritten_against_tuples(engine, state, rewritten)
                )
        engine.deliver_notifications(node, notifications)

    def on_vl_index(
        self, engine: "ContinuousQueryEngine", node: ChordNode, msg: VLIndexMessage
    ) -> None:
        """Match the tuple against VLQT, then store it in VLTT.

        A crash-recovery republication (``msg.refresh``) still matches —
        the evaluator may have lost its VLQT — but skips the store when
        the identical tuple is already held, so surviving evaluators do
        not inflate their VLTT.
        """
        state = engine.state(node)
        state.load.messages_processed += 1
        notifications = self._match_tuple_against_rewritten(
            engine, state, msg.tuple, msg.index_attribute
        )
        if not (msg.refresh and state.vltt.contains(msg.tuple, msg.index_attribute)):
            ident = engine.network.hash.hash_parts(
                msg.tuple.relation.name,
                msg.index_attribute,
                canonical_value(msg.tuple.value(msg.index_attribute)),
            )
            state.vltt.add(StoredTuple(msg.tuple, msg.index_attribute, ident))
        engine.deliver_notifications(node, notifications)
