"""Notification creation and delivery (Section 4.6).

An evaluator that satisfies a query's Where clause computes the answer
row and notifies the subscriber.  Delivery uses the subscriber's IP
address (one overlay hop) while the subscriber is online; otherwise the
notification is routed to ``Successor(Id(n))`` and *parked* there until
the subscriber reconnects — Chord's key handoff then returns the parked
notifications, because "when a node n joins a network, it receives from
its successor all data related to Id(n)".
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any


@dataclass(frozen=True)
class Notification:
    """One answer row for one continuous query.

    ``identity`` is the deduplication key used throughout the system:
    the set semantics of query answers collapse contributions that
    produce the same projected row for the same join value (the paper's
    rewritten-query keys collapse exactly these, Section 4.3.3).
    """

    query_key: str
    subscriber_ident: int
    row: tuple[Any, ...]
    join_value_repr: str
    trigger_pub_time: float
    match_pub_time: float
    created_at: float

    @property
    def identity(self) -> tuple[str, str, tuple[Any, ...]]:
        return (self.query_key, self.join_value_repr, self.row)


def group_by_subscriber(notifications) -> dict[int, list[Notification]]:
    """Batch notifications per receiver.

    "If more than one notifications are created for the same receiver,
    they are grouped in one message" (Section 4.6).
    """
    grouped: dict[int, list[Notification]] = {}
    for notification in notifications:
        grouped.setdefault(notification.subscriber_ident, []).append(notification)
    return grouped
