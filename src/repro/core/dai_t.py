"""DAI-T — notifications are created when *tuples* arrive (Section 4.4.3).

Evaluators store rewritten queries (VLQT) and match arriving tuples
against them; tuples themselves are never stored at the value level.
Because stored rewritten queries persist, a rewriter "does not need to
reindex the same rewritten query more than once": once the rewritten
queries for an input query have been spread over their evaluators, new
tuples create notifications with *no* messages beyond their own
indexing — "a huge performance gain for DAI-T".

The never-resend optimization is only sound with an unbounded window:
under sliding-window semantics an evaluator entry must have its time
refreshed by every new trigger or later pairs are lost, so when a
window is configured the rewriter resends (the evaluator then collapses
the copies by key and refreshes the entry's time).  DESIGN.md discusses
this reconstruction choice.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from ..chord.node import ChordNode
from ..sim.messages import JoinMessage, VLIndexMessage
from .dai_base import DoubleAttributeIndex

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .engine import ContinuousQueryEngine


class DAITuple(DoubleAttributeIndex):
    """The DAI-T algorithm."""

    name = "dai-t"
    supports_t2 = False
    indexes_tuples_at_value_level = True

    def remembers_sent_keys(self, engine: "ContinuousQueryEngine") -> bool:
        return engine.config.window is None

    def on_join(
        self, engine: "ContinuousQueryEngine", node: ChordNode, msg: JoinMessage
    ) -> None:
        """Store (or time-refresh) the rewritten queries; no evaluation —
        stored tuples do not exist under DAI-T."""
        state = engine.state(node)
        state.load.messages_processed += 1
        # Batches are grouped per evaluator identifier (§4.3.5), so every
        # rewritten query in the message shares the same ident.
        ident = None
        for rewritten in msg.rewritten:
            if ident is None:
                ident = self.evaluator_ident(engine, rewritten)
            state.vlqt.add(rewritten, ident)

    def on_vl_index(
        self, engine: "ContinuousQueryEngine", node: ChordNode, msg: VLIndexMessage
    ) -> None:
        """Match the tuple against stored rewritten queries; do not
        store the tuple."""
        state = engine.state(node)
        state.load.messages_processed += 1
        notifications = self._match_tuple_against_rewritten(
            engine, state, msg.tuple, msg.index_attribute
        )
        engine.deliver_notifications(node, notifications)
