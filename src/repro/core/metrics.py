"""Load snapshots over a running engine (the paper's load metrics).

One of the thesis' stated technical contributions is "the introduction
of appropriate metrics for capturing individual node load and total
system load".  This module materializes them:

* **filtering load** ``F(n)`` — match candidates examined by node
  ``n`` (split by attribute/value level, i.e. rewriter/evaluator role);
* **storage load** ``S(n)`` — items resident at ``n`` (same split,
  plus parked notifications);
* totals ``TF`` / ``TS`` and distribution summaries (sorted vectors,
  Gini coefficient, top-share, participation).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

import numpy as np

from ..sim import stats as distribution
from .base import NodeState

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .engine import ContinuousQueryEngine


@dataclass
class LoadSnapshot:
    """Per-node load vectors at one instant, keyed by node identifier."""

    filtering: dict[int, int]
    attribute_level_filtering: dict[int, int]
    value_level_filtering: dict[int, int]
    storage: dict[int, int]
    attribute_level_storage: dict[int, int]
    value_level_storage: dict[int, int]
    parked_notifications: dict[int, int]
    notifications_created: dict[int, int]
    messages_processed: dict[int, int]
    lease_reinstalls: dict[int, int]

    @property
    def total_lease_reinstalls(self) -> int:
        """Soft-state query copies actually restored by lease renewal."""
        return sum(self.lease_reinstalls.values())

    # -- totals ---------------------------------------------------------
    @property
    def total_filtering(self) -> int:
        """``TF`` over all nodes."""
        return sum(self.filtering.values())

    @property
    def total_storage(self) -> int:
        """``TS`` over all nodes."""
        return sum(self.storage.values())

    @property
    def total_evaluator_filtering(self) -> int:
        """Filtering performed at the value level only (evaluator role)."""
        return sum(self.value_level_filtering.values())

    @property
    def total_evaluator_storage(self) -> int:
        """Storage held at the value level only (evaluator role)."""
        return sum(self.value_level_storage.values())

    # -- distributions ----------------------------------------------------
    def sorted_filtering(self) -> np.ndarray:
        """Per-node filtering loads, most loaded first."""
        return distribution.sorted_loads(self.filtering.values())

    def sorted_storage(self) -> np.ndarray:
        """Per-node storage loads, most loaded first."""
        return distribution.sorted_loads(self.storage.values())

    def filtering_gini(self) -> float:
        return distribution.gini(self.filtering.values())

    def storage_gini(self) -> float:
        return distribution.gini(self.storage.values())

    def filtering_top_share(self, fraction: float = 0.01) -> float:
        return distribution.top_share(self.filtering.values(), fraction)

    def storage_top_share(self, fraction: float = 0.01) -> float:
        return distribution.top_share(self.storage.values(), fraction)

    def filtering_participation(self) -> float:
        """Fraction of nodes doing any filtering work (utilization)."""
        return distribution.participation(self.filtering.values())

    def diff(self, earlier: "LoadSnapshot") -> "LoadSnapshot":
        """Load accumulated since ``earlier`` (counters only; storage
        and parked values are gauges and are kept as-is)."""

        def delta(now: dict[int, int], then: dict[int, int]) -> dict[int, int]:
            return {ident: count - then.get(ident, 0) for ident, count in now.items()}

        return LoadSnapshot(
            filtering=delta(self.filtering, earlier.filtering),
            attribute_level_filtering=delta(
                self.attribute_level_filtering, earlier.attribute_level_filtering
            ),
            value_level_filtering=delta(
                self.value_level_filtering, earlier.value_level_filtering
            ),
            storage=dict(self.storage),
            attribute_level_storage=dict(self.attribute_level_storage),
            value_level_storage=dict(self.value_level_storage),
            parked_notifications=dict(self.parked_notifications),
            notifications_created=delta(
                self.notifications_created, earlier.notifications_created
            ),
            messages_processed=delta(self.messages_processed, earlier.messages_processed),
            lease_reinstalls=delta(self.lease_reinstalls, earlier.lease_reinstalls),
        )


def snapshot(engine: "ContinuousQueryEngine") -> LoadSnapshot:
    """Collect the current load vectors from every live node."""
    filtering: dict[int, int] = {}
    al_filtering: dict[int, int] = {}
    vl_filtering: dict[int, int] = {}
    storage: dict[int, int] = {}
    al_storage: dict[int, int] = {}
    vl_storage: dict[int, int] = {}
    parked: dict[int, int] = {}
    created: dict[int, int] = {}
    processed: dict[int, int] = {}
    reinstalls: dict[int, int] = {}
    for node in engine.network:
        ident = node.ident
        state = node.app
        if not isinstance(state, NodeState):
            # Lazily adopted ring: a node no message ever reached holds
            # no engine state, so its load row is all zeros — recorded
            # explicitly to keep the distribution vectors (Gini,
            # participation, ...) over the same node population as an
            # eagerly adopted ring.
            filtering[ident] = 0
            al_filtering[ident] = 0
            vl_filtering[ident] = 0
            storage[ident] = 0
            al_storage[ident] = 0
            vl_storage[ident] = 0
            parked[ident] = 0
            created[ident] = 0
            processed[ident] = 0
            reinstalls[ident] = 0
            continue
        breakdown = state.storage_breakdown()
        filtering[ident] = state.load.filtering
        al_filtering[ident] = state.load.attribute_level_filtering
        vl_filtering[ident] = state.load.value_level_filtering
        storage[ident] = breakdown.total
        al_storage[ident] = breakdown.attribute_level
        vl_storage[ident] = breakdown.value_level
        parked[ident] = breakdown.parked_notifications
        created[ident] = state.load.notifications_created
        processed[ident] = state.load.messages_processed
        reinstalls[ident] = state.load.lease_reinstalls
    return LoadSnapshot(
        filtering=filtering,
        attribute_level_filtering=al_filtering,
        value_level_filtering=vl_filtering,
        storage=storage,
        attribute_level_storage=al_storage,
        value_level_storage=vl_storage,
        parked_notifications=parked,
        notifications_created=created,
        messages_processed=processed,
        lease_reinstalls=reinstalls,
    )
