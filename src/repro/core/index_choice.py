"""Index-attribute selection strategies for SAI (Section 4.3.6).

SAI indexes a query under **one** of its two join attributes; the
choice determines who rewrites the query and which values spread its
evaluation.  The paper discusses two mutually independent criteria:

* **network traffic** — index under the attribute whose relation has
  the *lowest* rate of incoming tuples, so fewer tuples trigger,
  rewrite and reindex the query ("In our experiments ... we use the
  first metric and always choose as join attribute the one with the
  lower rate of incoming tuples");
* **evaluator load distribution** — prefer the attribute whose observed
  value distribution is more uniform, since "a join attribute with
  highly skewed values will result in loading a small portion of the
  evaluators".

Strategies that need arrival statistics *probe* the two candidate
rewriters before indexing ("any node can simply ask the two possible
rewriter nodes ... for the rate that tuples arrive"); the probe lookups
cost real overlay hops, billed as ``rate-probe`` traffic.
"""

from __future__ import annotations

import math
from collections import Counter
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any

from ..errors import QueryError
from ..sql.query import LEFT, RIGHT, JoinQuery

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..chord.node import ChordNode
    from .engine import ContinuousQueryEngine


@dataclass
class ArrivalStats:
    """Tuple-arrival statistics a rewriter keeps per (relation, attribute).

    "Each node x can keep track of the total number of tuples that have
    arrived to x in the last time window ... nodes should also keep
    track of the values of attributes as tuples arrive."
    """

    count: int = 0
    values: Counter = field(default_factory=Counter)

    def record(self, value: Any) -> None:
        self.count += 1
        self.values[value] += 1

    @property
    def distinct_values(self) -> int:
        return len(self.values)

    def normalized_entropy(self) -> float:
        """Shannon entropy of the value distribution scaled to [0, 1].

        1.0 means perfectly uniform over the observed values; 0.0 means
        a single value dominates completely (or nothing observed).
        """
        if self.count == 0 or len(self.values) <= 1:
            return 0.0
        total = float(self.count)
        entropy = -sum(
            (n / total) * math.log(n / total) for n in self.values.values()
        )
        return entropy / math.log(len(self.values))


class IndexChoiceStrategy:
    """Base class: pick the side (``left``/``right``) to index under."""

    name = "base"

    def choose(
        self,
        engine: "ContinuousQueryEngine",
        origin: "ChordNode",
        query: JoinQuery,
    ) -> str:
        raise NotImplementedError

    # -- shared probing helper ------------------------------------------
    @staticmethod
    def _probe(
        engine: "ContinuousQueryEngine",
        origin: "ChordNode",
        query: JoinQuery,
        label: str,
    ) -> ArrivalStats:
        """Read arrival stats from the candidate rewriter of ``label``.

        The lookup walks real finger tables; its hops are billed as
        ``rate-probe`` traffic.
        """
        side = query.side(label)
        attribute = query.index_attribute(label)
        ident = engine.replication.probe_identifier(
            engine.network.hash, side.relation, attribute
        )
        node = engine.transport.lookup(origin, ident, account="rate-probe")
        state = engine.state(node)
        return state.arrivals.get((side.relation, attribute), ArrivalStats())


class LeftChoice(IndexChoiceStrategy):
    """Always index under the left join attribute.

    Not from the paper — a deterministic baseline used by tests and the
    Table 4.1 trace, where reproducible rewriter placement matters.
    """

    name = "left"

    def choose(self, engine, origin, query) -> str:
        return LEFT


class RandomChoice(IndexChoiceStrategy):
    """Uniformly random side — the baseline of Section 4.3.1."""

    name = "random"

    def choose(self, engine, origin, query) -> str:
        return engine.rng.choice((LEFT, RIGHT))


class MinRateChoice(IndexChoiceStrategy):
    """Index under the relation with the *lowest* tuple-arrival rate.

    The strategy the paper uses in its experiments: fewer arriving
    tuples of the index relation means fewer trigger/rewrite/reindex
    cycles and therefore less network traffic.
    """

    name = "min-rate"

    def choose(self, engine, origin, query) -> str:
        left = self._probe(engine, origin, query, LEFT)
        right = self._probe(engine, origin, query, RIGHT)
        if left.count == right.count:
            return engine.rng.choice((LEFT, RIGHT))
        return LEFT if left.count < right.count else RIGHT


class MaxRateChoice(IndexChoiceStrategy):
    """Adversarial baseline: index under the *highest*-rate relation.

    Exists to quantify how much the choice matters (experiment E4).
    """

    name = "max-rate"

    def choose(self, engine, origin, query) -> str:
        left = self._probe(engine, origin, query, LEFT)
        right = self._probe(engine, origin, query, RIGHT)
        if left.count == right.count:
            return engine.rng.choice((LEFT, RIGHT))
        return LEFT if left.count > right.count else RIGHT


class UniformityChoice(IndexChoiceStrategy):
    """Index under the attribute with the more uniform value distribution.

    Targets evaluator load distribution rather than traffic: the values
    of the index attribute choose the evaluators, so a skewed attribute
    concentrates the query's evaluation on few nodes.
    """

    name = "uniformity"

    def choose(self, engine, origin, query) -> str:
        left = self._probe(engine, origin, query, LEFT)
        right = self._probe(engine, origin, query, RIGHT)
        left_score = left.normalized_entropy()
        right_score = right.normalized_entropy()
        if left_score == right_score:
            return engine.rng.choice((LEFT, RIGHT))
        return LEFT if left_score > right_score else RIGHT


_STRATEGIES = {
    strategy.name: strategy
    for strategy in (
        LeftChoice,
        RandomChoice,
        MinRateChoice,
        MaxRateChoice,
        UniformityChoice,
    )
}


def make_strategy(name: str) -> IndexChoiceStrategy:
    """Instantiate a strategy by name (``random``, ``min-rate``, ...)."""
    try:
        return _STRATEGIES[name]()
    except KeyError:
        raise QueryError(
            f"unknown index-choice strategy {name!r}; "
            f"expected one of {sorted(_STRATEGIES)}"
        ) from None
