"""Local two-level hash tables: ALQT, VLQT, VLTT (Section 4.3.5).

Rewriter nodes keep queries in the **attribute-level query table**
(ALQT); evaluator nodes keep rewritten queries in the **value-level
query table** (VLQT) and tuples in the **value-level tuple table**
(VLTT).  All three are two-level hash tables, so every incoming message
reaches its match candidates in two dictionary steps — the number of
candidates actually examined is what the filtering-load metric counts.

Every stored item remembers the routing identifier it was addressed to,
so responsibility handoff on node join/leave is a filter over the
tables (Chord transfers "all data related to Id(n)").

Sliding-window eviction (``evict_older_than``) is driven by per-table
lazy min-heaps of ``(time, seq, locator...)`` records instead of
rescanning every bucket each window round: eviction pops only records
older than the cutoff, validates each against the live entry (records
go stale when an entry was handed off, replaced, or had its time
refreshed) and re-arms refreshed entries with their current time.  The
set of entries evicted for a given cutoff is exactly the full-scan set —
every live entry older than the cutoff has at least one heap record at
or below its current time — only the work is proportional to the number
of expirations, not the table size.  ``pop_matching`` (responsibility
handoff) stays a scan: it filters by routing identifier, which no
time-ordered structure helps with, and runs only on churn events.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Any, Callable, Iterator, Optional

from ..perf import PERF
from ..sql.query import JoinQuery, RewrittenQuery
from ..sql.tuples import DataTuple, ProjectedTuple


# ----------------------------------------------------------------------
# Attribute level: queries waiting at rewriters
# ----------------------------------------------------------------------

@dataclass(slots=True)
class StoredQuery:
    """A query resident at a rewriter, with its indexing side."""

    query: JoinQuery
    index_label: str
    routing_ident: int


@dataclass
class QueryGroup:
    """Queries sharing an equivalent join condition (Section 4.3.5).

    "Similar queries are triggered in a single step.  In addition,
    reindexing can also be done with only one message for multiple
    queries since for the same incoming tuple all similar queries will
    require the same evaluator."

    ``sent_rewritten_keys`` is the DAI-T rewriter-side memory: "a
    rewriter does not need to reindex the same rewritten query more
    than once at the value level" (Section 4.4.3).
    """

    signature: str
    entries: list[StoredQuery] = field(default_factory=list)
    sent_rewritten_keys: set[str] = field(default_factory=set)

    def __len__(self) -> int:
        return len(self.entries)


class AttributeLevelQueryTable:
    """ALQT: level 1 = index attribute, level 2 = join condition."""

    def __init__(self):
        self._buckets: dict[tuple[str, str], dict[str, QueryGroup]] = {}
        self._count = 0

    def add(self, stored: StoredQuery) -> tuple[QueryGroup, bool]:
        """Index a query under its (relation, index attribute) bucket.

        Returns ``(group, is_new)``.  A copy with the same
        ``(query key, index side, routing identifier)`` is already
        present exactly when a soft-state lease renewal reaches a
        rewriter that never lost the query — the renewal is then a
        no-op, which is what makes periodic re-installation idempotent.
        """
        query = stored.query
        side = query.side(stored.index_label)
        level1 = (side.relation, query.index_attribute(stored.index_label))
        groups = self._buckets.setdefault(level1, {})
        signature = query.join_signature()
        group = groups.get(signature)
        if group is None:
            group = QueryGroup(signature)
            groups[signature] = group
        for entry in group.entries:
            if (
                entry.query.key == query.key
                and entry.index_label == stored.index_label
                and entry.routing_ident == stored.routing_ident
            ):
                return group, False
        group.entries.append(stored)
        self._count += 1
        return group, True

    def groups_for(self, relation: str, attribute: str) -> list[QueryGroup]:
        """All groups a tuple indexed by ``(relation, attribute)`` can hit."""
        return list(self._buckets.get((relation, attribute), {}).values())

    def remove(self, query_key: str) -> int:
        """Unsubscribe: drop every copy of the query; returns removals."""
        removed = 0
        for groups in self._buckets.values():
            for signature in list(groups):
                group = groups[signature]
                before = len(group.entries)
                group.entries = [
                    entry for entry in group.entries if entry.query.key != query_key
                ]
                removed += before - len(group.entries)
                if not group.entries:
                    del groups[signature]
        self._count -= removed
        return removed

    def pop_matching(self, should_move: Callable[[int], bool]) -> list[StoredQuery]:
        """Remove and return entries whose routing ident satisfies the
        predicate (responsibility handoff)."""
        moved: list[StoredQuery] = []
        for level1 in list(self._buckets):
            groups = self._buckets[level1]
            for signature in list(groups):
                group = groups[signature]
                keep = []
                for entry in group.entries:
                    if should_move(entry.routing_ident):
                        moved.append(entry)
                    else:
                        keep.append(entry)
                group.entries = keep
                if not keep:
                    del groups[signature]
            if not groups:
                del self._buckets[level1]
        self._count -= len(moved)
        return moved

    def __len__(self) -> int:
        return self._count

    def __iter__(self) -> Iterator[StoredQuery]:
        for groups in self._buckets.values():
            for group in groups.values():
                yield from group.entries


# ----------------------------------------------------------------------
# Value level: rewritten queries at evaluators
# ----------------------------------------------------------------------

@dataclass(slots=True)
class StoredRewritten:
    """A rewritten query at an evaluator, with its trigger-time memory.

    When a rewritten query with a key that is already present arrives,
    "only pubT(t) is stored along with q'" (Section 4.3.3) — hence the
    ``latest_trigger_time`` update instead of a second copy.
    """

    rewritten: RewrittenQuery
    routing_ident: int
    latest_trigger_time: float

    def refresh(self, trigger_time: float) -> None:
        if trigger_time > self.latest_trigger_time:
            self.latest_trigger_time = trigger_time


class ValueLevelQueryTable:
    """VLQT: level 1 = load-distributing attribute, level 2 = value."""

    def __init__(self):
        self._buckets: dict[tuple[str, str], dict[Any, dict[str, StoredRewritten]]] = {}
        self._count = 0
        #: Lazy eviction queue: ``(trigger_time, seq, level1, value, entry)``
        #: records; see the module docstring.
        self._evict_heap: list[tuple[float, int, tuple[str, str], Any, StoredRewritten]] = []
        self._evict_seq = 0

    def _arm(self, time: float, level1, value, entry: StoredRewritten) -> None:
        self._evict_seq += 1
        heapq.heappush(self._evict_heap, (time, self._evict_seq, level1, value, entry))

    def pending_before(self, cutoff: float) -> bool:
        """True when :meth:`evict_older_than` could evict anything.

        One heap peek — the barrier-aligned eviction replay calls this
        on every adopted node per round, so it must cost O(1) on the
        (overwhelmingly common) idle nodes.
        """
        heap = self._evict_heap
        return bool(heap) and heap[0][0] < cutoff

    def add(self, rewritten: RewrittenQuery, routing_ident: int) -> tuple[StoredRewritten, bool]:
        """Store (or refresh) a rewritten query; returns (entry, is_new).

        The level-2 key is ``dis_value`` — the attribute value a
        matching tuple carries — so arriving ``vl-index`` tuples find
        their candidates by their own attribute values even when the
        dis side is a linear expression.
        """
        level1 = (rewritten.relation, rewritten.dis_attribute or "")
        level2 = self._buckets.setdefault(level1, {})
        by_key = level2.setdefault(rewritten.dis_value, {})
        existing = by_key.get(rewritten.key)
        if existing is not None:
            existing.refresh(rewritten.trigger_pub_time)
            return existing, False
        entry = StoredRewritten(rewritten, routing_ident, rewritten.trigger_pub_time)
        by_key[rewritten.key] = entry
        self._count += 1
        self._arm(entry.latest_trigger_time, level1, rewritten.dis_value, entry)
        return entry, True

    def peek(self, rewritten: RewrittenQuery) -> Optional[StoredRewritten]:
        """The stored entry with this rewritten query's key, if any."""
        level2 = self._buckets.get((rewritten.relation, rewritten.dis_attribute or ""))
        if not level2:
            return None
        by_key = level2.get(rewritten.dis_value)
        return by_key.get(rewritten.key) if by_key else None

    def insert_entry(self, entry: StoredRewritten) -> None:
        """Re-insert a previously stored entry (responsibility handoff)."""
        stored, is_new = self.add(entry.rewritten, entry.routing_ident)
        stored.refresh(entry.latest_trigger_time)
        if not is_new:
            stored.routing_ident = entry.routing_ident

    def candidates(
        self, relation: str, attribute: str, value: Any
    ) -> list[StoredRewritten]:
        """Rewritten queries a ``vl-index`` tuple can possibly trigger."""
        level2 = self._buckets.get((relation, attribute))
        if not level2:
            return []
        by_key = level2.get(value)
        return list(by_key.values()) if by_key else []

    def evict_older_than(self, cutoff: float) -> int:
        """Drop entries whose latest trigger is before ``cutoff``
        (sliding-window semantics); returns evictions.

        Pops the lazy heap instead of scanning every bucket: a record
        whose entry is gone or replaced is discarded; one whose entry
        was refreshed past the cutoff is re-armed at its current time;
        only records that still describe an expired live entry evict.
        """
        heap = self._evict_heap
        buckets = self._buckets
        evicted = 0
        while heap and heap[0][0] < cutoff:
            _, _, level1, value, entry = heapq.heappop(heap)
            level2 = buckets.get(level1)
            by_key = level2.get(value) if level2 is not None else None
            if by_key is None or by_key.get(entry.rewritten.key) is not entry:
                continue  # stale record: entry was handed off or replaced
            current_time = entry.latest_trigger_time
            if current_time >= cutoff:
                self._arm(current_time, level1, value, entry)
                continue
            del by_key[entry.rewritten.key]
            evicted += 1
            if not by_key:
                del level2[value]
                if not level2:
                    del buckets[level1]
        self._count -= evicted
        if PERF.enabled:
            PERF.count("vlqt.evicted", evicted)
        return evicted

    def pop_matching(self, should_move: Callable[[int], bool]) -> list[StoredRewritten]:
        moved: list[StoredRewritten] = []
        for level1 in list(self._buckets):
            level2 = self._buckets[level1]
            for value in list(level2):
                by_key = level2[value]
                for key in list(by_key):
                    if should_move(by_key[key].routing_ident):
                        moved.append(by_key.pop(key))
                if not by_key:
                    del level2[value]
            if not level2:
                del self._buckets[level1]
        self._count -= len(moved)
        return moved

    def __len__(self) -> int:
        return self._count

    def __iter__(self) -> Iterator[StoredRewritten]:
        for level2 in self._buckets.values():
            for by_key in level2.values():
                yield from by_key.values()


# ----------------------------------------------------------------------
# Value level: tuples at evaluators
# ----------------------------------------------------------------------

@dataclass(slots=True)
class StoredTuple:
    """A tuple at an evaluator, remembered under its index attribute."""

    tuple: DataTuple
    index_attribute: str
    routing_ident: int


class ValueLevelTupleTable:
    """VLTT: level 1 = tuple's index attribute, level 2 = its value."""

    def __init__(self):
        self._buckets: dict[tuple[str, str], dict[Any, list[StoredTuple]]] = {}
        self._count = 0
        #: Lazy eviction queue; tuple publication times never change, so
        #: records only go stale when an entry is handed off on churn.
        self._evict_heap: list[tuple[float, int, tuple[str, str], Any, StoredTuple]] = []
        self._evict_seq = 0

    def add(self, stored: StoredTuple) -> None:
        level1 = (stored.tuple.relation.name, stored.index_attribute)
        value = stored.tuple.value(stored.index_attribute)
        self._buckets.setdefault(level1, {}).setdefault(value, []).append(stored)
        self._count += 1
        self._evict_seq += 1
        heapq.heappush(
            self._evict_heap,
            (stored.tuple.pub_time, self._evict_seq, level1, value, stored),
        )

    def candidates(self, relation: str, attribute: str, value: Any) -> list[StoredTuple]:
        """Tuples a rewritten query over ``relation.attribute = value``
        can possibly match."""
        level2 = self._buckets.get((relation, attribute))
        if not level2:
            return []
        return list(level2.get(value, ()))

    def contains(self, tup: DataTuple, attribute: str) -> bool:
        """True when this exact tuple is already stored under
        ``attribute`` (used to deduplicate crash-recovery republication)."""
        level2 = self._buckets.get((tup.relation.name, attribute))
        if not level2:
            return False
        return any(
            stored.tuple == tup for stored in level2.get(tup.value(attribute), ())
        )

    def pending_before(self, cutoff: float) -> bool:
        """True when :meth:`evict_older_than` could evict anything."""
        heap = self._evict_heap
        return bool(heap) and heap[0][0] < cutoff

    def evict_older_than(self, cutoff: float) -> int:
        heap = self._evict_heap
        buckets = self._buckets
        evicted = 0
        while heap and heap[0][0] < cutoff:
            _, _, level1, value, stored = heapq.heappop(heap)
            level2 = buckets.get(level1)
            bucket = level2.get(value) if level2 is not None else None
            if not bucket:
                continue  # stale record: bucket drained by handoff
            for index, candidate in enumerate(bucket):
                if candidate is stored:
                    del bucket[index]
                    evicted += 1
                    if not bucket:
                        del level2[value]
                        if not level2:
                            del buckets[level1]
                    break
        self._count -= evicted
        if PERF.enabled:
            PERF.count("vltt.evicted", evicted)
        return evicted

    def pop_matching(self, should_move: Callable[[int], bool]) -> list[StoredTuple]:
        moved: list[StoredTuple] = []
        for level1 in list(self._buckets):
            level2 = self._buckets[level1]
            for value in list(level2):
                keep = []
                for stored in level2[value]:
                    if should_move(stored.routing_ident):
                        moved.append(stored)
                    else:
                        keep.append(stored)
                if keep:
                    level2[value] = keep
                else:
                    del level2[value]
            if not level2:
                del self._buckets[level1]
        self._count -= len(moved)
        return moved

    def __len__(self) -> int:
        return self._count

    def __iter__(self) -> Iterator[StoredTuple]:
        for level2 in self._buckets.values():
            for stored_list in level2.values():
                yield from stored_list


# ----------------------------------------------------------------------
# DAI-V: projected tuples at value-indexed evaluators (Section 4.5)
# ----------------------------------------------------------------------

@dataclass(slots=True)
class StoredProjection:
    """A projected trigger tuple stored by a DAI-V evaluator."""

    projection: ProjectedTuple
    group_signature: str
    value: Any
    routing_ident: int


class ProjectionStore:
    """DAI-V storage: level 1 = (group, relation), level 2 = join value.

    The join value is re-checked on match, so identifier collisions
    between different values (``Hash(str(value))`` shares one ring) can
    never create false notifications.
    """

    def __init__(self):
        self._buckets: dict[tuple[str, str], dict[Any, list[StoredProjection]]] = {}
        self._count = 0
        #: Lazy eviction queue.  A duplicate ``add`` can replace an
        #: entry's projection with a *newer* publication time, so
        #: eviction re-arms records whose entry has outlived them.
        self._evict_heap: list[tuple[float, int, tuple[str, str], Any, StoredProjection]] = []
        self._evict_seq = 0

    def _arm(self, time: float, level1, value, stored: StoredProjection) -> None:
        self._evict_seq += 1
        heapq.heappush(self._evict_heap, (time, self._evict_seq, level1, value, stored))

    def add(self, stored: StoredProjection) -> bool:
        """Store a projection; duplicates (same content) are collapsed."""
        level1 = (stored.group_signature, stored.projection.relation_name)
        bucket = self._buckets.setdefault(level1, {}).setdefault(stored.value, [])
        for existing in bucket:
            if existing.projection.items == stored.projection.items:
                if stored.projection.pub_time > existing.projection.pub_time:
                    existing.projection = stored.projection
                return False
        bucket.append(stored)
        self._count += 1
        self._arm(stored.projection.pub_time, level1, stored.value, stored)
        return True

    def candidates(
        self, group_signature: str, relation: str, value: Any
    ) -> list[StoredProjection]:
        level2 = self._buckets.get((group_signature, relation))
        if not level2:
            return []
        return list(level2.get(value, ()))

    def pending_before(self, cutoff: float) -> bool:
        """True when :meth:`evict_older_than` could evict anything."""
        heap = self._evict_heap
        return bool(heap) and heap[0][0] < cutoff

    def evict_older_than(self, cutoff: float) -> int:
        heap = self._evict_heap
        buckets = self._buckets
        evicted = 0
        while heap and heap[0][0] < cutoff:
            _, _, level1, value, stored = heapq.heappop(heap)
            level2 = buckets.get(level1)
            bucket = level2.get(value) if level2 is not None else None
            if not bucket:
                continue
            for index, candidate in enumerate(bucket):
                if candidate is stored:
                    current_time = stored.projection.pub_time
                    if current_time >= cutoff:
                        # Replaced by a newer duplicate since this
                        # record was armed: keep it, re-arm.
                        self._arm(current_time, level1, value, stored)
                        break
                    del bucket[index]
                    evicted += 1
                    if not bucket:
                        del level2[value]
                        if not level2:
                            del buckets[level1]
                    break
        self._count -= evicted
        if PERF.enabled:
            PERF.count("projections.evicted", evicted)
        return evicted

    def pop_matching(self, should_move: Callable[[int], bool]) -> list[StoredProjection]:
        moved: list[StoredProjection] = []
        for level1 in list(self._buckets):
            level2 = self._buckets[level1]
            for value in list(level2):
                keep = []
                for stored in level2[value]:
                    if should_move(stored.routing_ident):
                        moved.append(stored)
                    else:
                        keep.append(stored)
                if keep:
                    level2[value] = keep
                else:
                    del level2[value]
            if not level2:
                del self._buckets[level1]
        self._count -= len(moved)
        return moved

    def __len__(self) -> int:
        return self._count

    def __iter__(self) -> Iterator[StoredProjection]:
        for level2 in self._buckets.values():
            for stored_list in level2.values():
                yield from stored_list
