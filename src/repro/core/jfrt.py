"""The join fingers routing table (Section 4.7.1, reconstructed).

A rewriter repeatedly reindexes rewritten queries toward value-level
identifiers.  The JFRT caches, per value-level identifier, the node
that answered the last routed delivery, so subsequent ``join()``
messages for the same identifier reach their evaluator in **one hop**
instead of ``O(log N)``.

Entries can go stale when the cached node leaves, fails, or loses
responsibility for the identifier to a newcomer; a cached entry is
therefore validated before use and dropped on mismatch (the message
then falls back to normal DHT routing, which also refreshes the
entry).  The cache is a bounded LRU so a rewriter's memory use stays
independent of the value domain size.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import TYPE_CHECKING, Optional

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..chord.node import ChordNode


class JoinFingersRoutingTable:
    """Bounded LRU map: value-level identifier → evaluator node."""

    def __init__(self, capacity: int):
        if capacity < 1:
            raise ValueError("JFRT capacity must be >= 1")
        self.capacity = capacity
        self._entries: "OrderedDict[int, ChordNode]" = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.invalidations = 0

    def __len__(self) -> int:
        return len(self._entries)

    def lookup(self, ident: int) -> Optional["ChordNode"]:
        """A *valid* cached evaluator for ``ident``, or ``None``.

        Validity = the node is alive and still responsible for the
        identifier; stale entries are evicted and counted.
        """
        node = self._entries.get(ident)
        if node is None:
            self.misses += 1
            return None
        if not node.alive or not node.owns(ident):
            del self._entries[ident]
            self.invalidations += 1
            self.misses += 1
            return None
        self._entries.move_to_end(ident)
        self.hits += 1
        return node

    def learn(self, ident: int, node: "ChordNode") -> None:
        """Remember that ``node`` answered for ``ident`` (LRU insert)."""
        self._entries[ident] = node
        self._entries.move_to_end(ident)
        while len(self._entries) > self.capacity:
            self._entries.popitem(last=False)

    @property
    def hit_ratio(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0
