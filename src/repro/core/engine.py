"""The continuous-query engine: algorithms wired onto a Chord network.

:class:`ContinuousQueryEngine` is the public entry point of the
library.  It attaches per-node state to every node of a
:class:`~repro.chord.network.ChordNetwork`, registers the protocol
message handlers, and exposes the operations of the paper's system
model (Section 3.1): any node can **subscribe** continuous queries and
**publish** tuples; the network cooperates to deliver notifications.

Typical use::

    network = ChordNetwork.build(256)
    engine = ContinuousQueryEngine(network, EngineConfig(algorithm="dai-t"))
    node = network.nodes[0]
    query = engine.subscribe(node, "SELECT R.A, S.D FROM R, S WHERE R.B = S.E")
    engine.publish(network.nodes[1], relation_r, {"A": 1, "B": 7})
    engine.publish(network.nodes[2], relation_s, {"D": 2, "E": 7})
    engine.notifications(node)   # -> one notification, row (1, 2)
"""

from __future__ import annotations

import itertools
import random
from dataclasses import dataclass
from typing import Any, Iterable, Mapping, Optional, Union

from ..chord.network import ChordNetwork
from ..chord.node import ChordNode
from ..errors import QueryError
from ..sim.clock import LogicalClock
from ..sim.messages import NotificationMessage, UnsubscribeMessage
from ..sql.parser import parse_query
from ..sql.query import JoinQuery, Subscriber
from ..sql.schema import Relation, Schema
from ..sql.tuples import DataTuple
from .base import Algorithm, NodeState
from .dai_q import DAIQuery
from .dai_t import DAITuple
from .dai_v import DAIValue
from .index_choice import make_strategy
from .metrics import LoadSnapshot, snapshot
from .notifications import Notification, group_by_subscriber
from .replication import ReplicationScheme
from .sai import SingleAttributeIndex

#: Registry of the four algorithms by configuration name.
ALGORITHMS: dict[str, type[Algorithm]] = {
    SingleAttributeIndex.name: SingleAttributeIndex,
    DAIQuery.name: DAIQuery,
    DAITuple.name: DAITuple,
    DAIValue.name: DAIValue,
}


def make_algorithm(name: str) -> Algorithm:
    """Instantiate an algorithm by name (``sai``, ``dai-q``, ``dai-t``,
    ``dai-v``)."""
    try:
        return ALGORITHMS[name]()
    except KeyError:
        raise QueryError(
            f"unknown algorithm {name!r}; expected one of {sorted(ALGORITHMS)}"
        ) from None


@dataclass
class EngineConfig:
    """Tunable behaviour of the engine.

    Defaults reproduce the paper's baseline setting: SAI with the
    min-rate index-attribute choice, no replication, no JFRT, unbounded
    window, recursive ``multisend``.
    """

    algorithm: str = "sai"
    #: SAI index-attribute strategy: random | min-rate | max-rate | uniformity.
    index_choice: str = "min-rate"
    #: Attribute-level rewriter replication factor (Section 4.7.2); 1 = off.
    replication_factor: int = 1
    #: JFRT capacity per rewriter (Section 4.7.1); 0 disables the cache.
    jfrt_capacity: int = 0
    #: Sliding window over tuple publication times; ``None`` = unbounded.
    window: Optional[float] = None
    #: Use the recursive multisend (Section 2.3); False = iterative.
    recursive_multisend: bool = True
    #: DAI-V keyed variant (``Hash(Key(q) + valJC)``, Section 4.5 end).
    daiv_keyed: bool = False
    #: Defer per-node state/handler attachment until a first message
    #: arrives (``None`` = automatic: lazy on fast-routing rings and on
    #: rings of :data:`LAZY_ADOPTION_THRESHOLD`+ nodes).  Large-scale
    #: sweeps touch a sparse subset of nodes, so eager adoption would
    #: dominate setup time and memory.
    lazy_adoption: Optional[bool] = None
    seed: int = 0


#: Ring size at which engines switch to lazy adoption automatically.
LAZY_ADOPTION_THRESHOLD = 8192


class ContinuousQueryEngine:
    """Continuous two-way equi-join processing over a Chord overlay."""

    def __init__(
        self,
        network: ChordNetwork,
        config: EngineConfig | None = None,
        clock: LogicalClock | None = None,
    ):
        self.network = network
        self.config = config if config is not None else EngineConfig()
        self.clock = clock if clock is not None else LogicalClock()
        self.rng = random.Random(self.config.seed)
        self.algorithm = make_algorithm(self.config.algorithm)
        self.replication = ReplicationScheme(self.config.replication_factor)
        self.index_choice = make_strategy(self.config.index_choice)
        self._query_counter = itertools.count()
        #: Queries by key, as bound at subscription time.
        self.queries: dict[str, JoinQuery] = {}
        #: Index side(s) chosen for each query at subscription time —
        #: lease renewals and unsubscription replay exactly this choice
        #: instead of re-running the (possibly randomized) strategy.
        self._query_labels: dict[str, list[str]] = {}
        #: Subscriber node by identifier, for direct delivery.
        self._subscriber_nodes: dict[int, ChordNode] = {}
        #: Online/offline presence per subscriber identifier.
        self._presence: dict[int, bool] = {}
        #: Publication log in ``pub_time`` order — the soft-state source
        #: for crash-recovery republication (publishers are assumed to
        #: keep their own tuples, as in the paper's best-effort model).
        self._publications: list[DataTuple] = []
        #: Notifications by query key, in delivery order.
        self.delivered: dict[str, list[Notification]] = {}
        self._delivered_identities: dict[str, set] = {}
        #: Notifications whose identity had already been delivered
        #: (should stay 0; tracked for the duplicate-avoidance claims).
        self.duplicate_deliveries = 0
        #: Re-created notifications filtered before the network hop
        #: because the subscriber already holds the identity (the
        #: crash-recovery duplicate-suppression path).
        self.suppressed_renotifications = 0
        #: Callbacks fired on first delivery of each answer identity,
        #: keyed by query key (used by the multiway-join pipeline).
        self._notification_listeners: dict[str, list] = {}
        #: Interception point for sharded execution: when set, evaluator
        #: output is handed to ``gateway(from_node, notifications)``
        #: instead of being shipped, so a driver can resolve
        #: duplicate-suppression in global order at a barrier (see
        #: :mod:`repro.sim.shard`).
        self.notification_gateway = None
        #: Every node state this engine ever attached, by identifier.
        #: Window eviction iterates this registry instead of the whole
        #: ring, so lazily adopted million-node networks pay per
        #: *touched* node, not per member (see :meth:`adopted_states`).
        self._adopted: dict[int, NodeState] = {}

        lazy = self.config.lazy_adoption
        if lazy is None:
            lazy = network.fast_routing or len(network) >= LAZY_ADOPTION_THRESHOLD
        if lazy:
            adopt = self.adopt
            for node in network:
                node.adopt_hook = adopt
        else:
            for node in network:
                self.adopt(node)
        network.transfer_hook = self._transfer

    @property
    def transport(self):
        """The active message transport (see :mod:`repro.transport`).

        Resolved through the network on every access so installing a
        live transport (``network.use_transport``) after the engine was
        built — the order the cluster bootstrap uses — takes effect
        immediately.
        """
        return self.network.transport

    # ------------------------------------------------------------------
    # Node state management
    # ------------------------------------------------------------------
    def adopt(self, node: ChordNode) -> NodeState:
        """Attach engine state and protocol handlers to a node."""
        if isinstance(node.app, NodeState):
            self._adopted[node.ident] = node.app
            return node.app
        state = NodeState(node, self.config.jfrt_capacity)
        node.app = state
        self._adopted[node.ident] = state
        algorithm = self.algorithm
        node.register_handler(
            "query", lambda n, m: algorithm.on_query(self, n, m)
        )
        node.register_handler(
            "al-index", lambda n, m: algorithm.on_al_index(self, n, m)
        )
        node.register_handler(
            "vl-index", lambda n, m: algorithm.on_vl_index(self, n, m)
        )
        node.register_handler(
            "join", lambda n, m: algorithm.on_join(self, n, m)
        )
        node.register_handler("notification", self._on_notification)
        node.register_handler("unsubscribe", self._on_unsubscribe)
        return state

    def state(self, node: ChordNode) -> NodeState:
        """The engine state of ``node`` (attaching it if needed)."""
        if isinstance(node.app, NodeState):
            return node.app
        return self.adopt(node)

    def _transfer(self, source: ChordNode, target: ChordNode) -> None:
        """Chord key handoff: move application items between nodes.

        The network arranges for ``target`` to already own the moved
        range when the hook fires (both on join and on voluntary
        leave), so ownership is the single predicate needed.
        """
        self.state(source).transfer_to(self.state(target), target.owns)

    # ------------------------------------------------------------------
    # Public operations (system model, Section 3.1)
    # ------------------------------------------------------------------
    def subscribe(
        self,
        origin: ChordNode,
        query: Union[str, JoinQuery],
        schema: Optional[Schema] = None,
    ) -> JoinQuery:
        """Pose a continuous query from ``origin``; returns the bound query.

        ``query`` may be SQL text (parsed against ``schema`` when
        given) or an already built :class:`~repro.sql.query.JoinQuery`.
        The query key is ``Key(n)`` concatenated with a positive
        integer (Section 3.2).
        """
        if isinstance(query, str):
            query = parse_query(query, schema)
        key = f"{origin.key}#{next(self._query_counter)}"
        bound = query.with_subscription(
            key,
            self.clock.now,
            Subscriber(origin.key, origin.ident, origin.ip),
        )
        self.queries[key] = bound
        self._subscriber_nodes[origin.ident] = origin
        self._presence.setdefault(origin.ident, True)
        self.delivered.setdefault(key, [])
        self._delivered_identities.setdefault(key, set())
        self._query_labels[key] = self.algorithm.index_query(self, origin, bound)
        return bound

    def publish(
        self,
        origin: ChordNode,
        relation: Relation,
        values: Mapping[str, Any],
    ) -> DataTuple:
        """Insert a tuple from ``origin`` (``pubT`` = current time)."""
        tup = DataTuple.make(relation, values, pub_time=self.clock.now)
        self._publications.append(tup)
        self.algorithm.index_tuple(self, origin, tup)
        return tup

    def lease_refresh_steps(self):
        """Yield ``(kind, replay)`` thunks re-asserting all soft state.

        ``kind`` is ``"query"`` or ``"tuple"``; calling ``replay()``
        re-sends that one item with ``refresh=True``.  The generator is
        lazy so a live driver can pace the replay against its in-flight
        budget (firing every step of a large publication log at once
        overflows send windows); :meth:`refresh_leases` is the one-shot
        consumer.
        """
        for key, query in list(self.queries.items()):
            origin = self._subscriber_nodes.get(query.subscriber.ident)
            if origin is None or not origin.alive:
                origin = self.network.responsible_node(query.subscriber.ident)

            def replay_query(origin=origin, query=query, key=key):
                self.algorithm.index_query(
                    self,
                    origin,
                    query,
                    labels=self._query_labels.get(key),
                    refresh=True,
                )

            yield "query", replay_query
        horizon = (
            None
            if self.config.window is None
            else self.clock.now - self.config.window
        )
        for tup in self._publications:
            if horizon is not None and tup.pub_time < horizon:
                continue
            origin = self.network.responsible_node(
                self.network.hash(tup.relation.name)
            )

            def replay_tuple(origin=origin, tup=tup):
                self.algorithm.index_tuple(self, origin, tup, refresh=True)

            yield "tuple", replay_tuple

    def refresh_leases(self) -> dict[str, int]:
        """Re-assert all soft state (queries as leases, tuples replayed).

        Crash recovery in the spirit of the paper's best-effort model:
        subscribers periodically re-install their queries (the ALQT
        deduplicates, so an intact rewriter is a no-op and a restarted
        one recovers the query) and publishers replay tuples still
        inside the window with ``refresh=True`` so receivers rebuild
        lost value-level state without double-counting.  Duplicate
        notifications re-created along the way are suppressed against
        the subscriber's delivered set.  Returns the renewal counts.
        """
        counts = {"queries": 0, "tuples": 0}
        for kind, replay in self.lease_refresh_steps():
            replay()
            counts["queries" if kind == "query" else "tuples"] += 1
        return counts

    def unsubscribe(self, origin: ChordNode, query: JoinQuery) -> None:
        """Best-effort removal of a query from its rewriter(s).

        Attribute-level copies are removed; value-level rewritten
        queries created earlier stay inert (their notifications are
        suppressed at delivery) and age out with the window, mirroring
        the paper's best-effort semantics.
        """
        if query.key not in self.queries:
            raise QueryError(f"unknown query {query.key!r}")
        del self.queries[query.key]
        message = UnsubscribeMessage(query_key=query.key)
        labels = self._query_labels.pop(query.key, None)
        if labels is None:
            labels = self.algorithm.index_labels(self, origin, query)
        for label in labels:
            side = query.side(label)
            attribute = query.index_attribute(label)
            for ident in self.replication.rewriter_identifiers(
                self.network.hash, side.relation, attribute
            ):
                self.transport.send(origin, message, ident)

    # ------------------------------------------------------------------
    # Presence / notification plumbing
    # ------------------------------------------------------------------
    def go_offline(self, node: ChordNode) -> None:
        """The subscriber stops accepting direct deliveries; further
        notifications are routed to ``Successor(Id(n))`` and parked."""
        self._presence[node.ident] = False

    def come_online(self, node: ChordNode) -> list[Notification]:
        """Resume deliveries and collect notifications parked locally
        (Chord key handoff has already moved them here on rejoin)."""
        self._presence[node.ident] = True
        self._subscriber_nodes[node.ident] = node
        state = self.state(node)
        parked = state.parked.pop(node.ident, [])
        for notification in parked:
            if self._record_delivery(state, notification):
                state.inbox.append(notification)
        return parked

    def is_online(self, ident: int) -> bool:
        return self._presence.get(ident, False)

    def deliver_notifications(
        self, from_node: ChordNode, notifications: Iterable[Notification]
    ) -> None:
        """Ship notifications to their subscribers (Section 4.6).

        Identities the subscriber has already received are filtered out
        before the network hop: a restarted evaluator loses its
        ``emitted`` memory, so crash-recovery replay can legitimately
        re-create an answer — the filter keeps delivery exactly-once.
        """
        gateway = self.notification_gateway
        if gateway is not None:
            gateway(from_node, notifications)
            return
        for subscriber_ident, batch in group_by_subscriber(notifications).items():
            live = []
            for notification in batch:
                if notification.query_key not in self.queries:
                    continue
                seen = self._delivered_identities.get(notification.query_key)
                if seen is not None and notification.identity in seen:
                    self.suppressed_renotifications += 1
                    continue
                live.append(notification)
            if not live:
                continue
            message = NotificationMessage(
                notifications=tuple(live), subscriber_ident=subscriber_ident
            )
            target = self._subscriber_nodes.get(subscriber_ident)
            if (
                target is not None
                and target.alive
                and self._presence.get(subscriber_ident, False)
            ):
                self.transport.send_direct(from_node, message, target)
            else:
                self.transport.send(from_node, message, subscriber_ident)

    def _on_notification(self, node: ChordNode, msg: NotificationMessage) -> None:
        state = self.state(node)
        if node.ident == msg.subscriber_ident and self._presence.get(
            msg.subscriber_ident, False
        ):
            for notification in msg.notifications:
                if self._record_delivery(state, notification):
                    state.inbox.append(notification)
        else:
            state.parked.setdefault(msg.subscriber_ident, []).extend(
                msg.notifications
            )

    def add_notification_listener(self, query_key: str, callback) -> None:
        """Invoke ``callback(notification)`` on each *new* answer identity.

        Listeners see every distinct answer exactly once, in delivery
        order — the reactive hook the multiway-join pipeline builds on.
        """
        self._notification_listeners.setdefault(query_key, []).append(callback)

    def _record_delivery(self, state: NodeState, notification: Notification) -> bool:
        """Record one arriving notification; True when its identity is new.

        Duplicate identities (possible only when crash recovery replays
        an answer) are counted and dropped so the delivered lists and
        subscriber inboxes keep the paper's set semantics.
        """
        identities = self._delivered_identities.setdefault(
            notification.query_key, set()
        )
        if notification.identity in identities:
            self.duplicate_deliveries += 1
            return False
        identities.add(notification.identity)
        self.delivered.setdefault(notification.query_key, []).append(notification)
        for callback in self._notification_listeners.get(
            notification.query_key, ()
        ):
            callback(notification)
        return True

    def _on_unsubscribe(self, node: ChordNode, msg: UnsubscribeMessage) -> None:
        self.state(node).alqt.remove(msg.query_key)

    # ------------------------------------------------------------------
    # Churn helpers
    # ------------------------------------------------------------------
    def disconnect(self, node: ChordNode) -> None:
        """Subscriber goes offline *and* leaves the ring voluntarily."""
        self.go_offline(node)
        self.network.leave(node)

    def reconnect(self, key: str) -> ChordNode:
        """A previously disconnected node rejoins under the same key.

        Chord assigns it the same identifier (``Hash(Key(n))``), so the
        join handoff returns all data related to ``Id(n)`` — including
        parked notifications, which :meth:`come_online` then surfaces.
        """
        node = self.network.join(key)
        self.adopt(node)
        self.come_online(node)
        return node

    # ------------------------------------------------------------------
    # Measurement
    # ------------------------------------------------------------------
    def adopted_states(self):
        """Yield ``(ident, state)`` for adopted *current-member* nodes.

        The registry may retain states whose node has since left or
        been replaced under the same identifier; the identity check
        against the live membership table skips those, so iterating
        here is equivalent to scanning the whole ring for
        ``NodeState``-carrying members — at the cost of the touched
        nodes only.
        """
        members = self.network._nodes
        for ident, state in self._adopted.items():
            if members.get(ident) is state.node:
                yield ident, state

    def evict_expired(self, cutoff: float | None = None) -> int:
        """Apply sliding-window eviction on every adopted node (no-op
        when the window is unbounded); returns the evicted-item count.

        ``cutoff`` defaults to ``clock.now - window``; the sharded
        executor passes it explicitly so barrier replicas evict against
        the driver's clock rather than their own (possibly lagging)
        copy.
        """
        if self.config.window is None:
            return 0
        if cutoff is None:
            cutoff = self.clock.now - self.config.window
        return sum(state.evict_expired(cutoff) for _, state in self.adopted_states())

    def load_snapshot(self) -> LoadSnapshot:
        """Per-node filtering/storage load vectors (see metrics module)."""
        return snapshot(self)

    def notifications(self, node: ChordNode) -> list[Notification]:
        """All notifications delivered to ``node`` so far."""
        return list(self.state(node).inbox)

    def delivered_rows(self, query_key: str) -> set:
        """The delivered answer set of one query: ``{(value, row), ...}``."""
        return {
            (n.join_value_repr, n.row) for n in self.delivered.get(query_key, ())
        }

    @property
    def traffic(self):
        """The network's traffic counters (hops/messages by type)."""
        return self.network.stats
