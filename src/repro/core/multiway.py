"""Continuous N-way chain joins via two-way pipelines (extension).

The thesis names multi-way joins as future work; the authors' follow-up
paper evaluates them by decomposing the join into a pipeline of two-way
joins whose **intermediate results are re-published into the network**.
This module implements that strategy on top of the unmodified two-way
engine:

* an N-way chain ``R1 ⋈ R2 ⋈ ... ⋈ Rn`` becomes ``n - 1`` ordinary
  two-way continuous queries;
* stage ``k`` joins the intermediate relation ``I_{k-1}`` (or ``R1``
  for the first stage) with ``R_{k+1}``;
* the subscriber node acts as the **pipeline coordinator**: whenever a
  stage query delivers a new answer row, the coordinator publishes it
  as a tuple of the next intermediate relation, which flows through the
  standard tuple-indexing machinery and triggers the next stage.

Every stage query is type T1 (bare attribute equalities), so the
pipeline runs under any of the four algorithms.  Limitations, by
design of the strategy:

* intermediate relation names embed the user query key, so intermediate
  streams of different multiway queries never interfere (and never
  group — the cost the follow-up paper optimizes);
* sliding windows are rejected: an intermediate tuple's publication
  time is the pipeline's reaction time, not its constituents' times,
  which would skew window semantics.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass, field
from typing import Any, Iterable, Optional, Union

from ..chord.node import ChordNode
from ..errors import QueryError
from ..sql.expr import AttrRef
from ..sql.multiway import MultiwayQuery, parse_multiway_query
from ..sql.query import JoinQuery, QuerySide
from ..sql.schema import Relation, Schema
from ..sql.tuples import DataTuple
from .engine import ContinuousQueryEngine
from .notifications import Notification


@dataclass
class MultiwaySubscription:
    """A running N-way pipeline and its accumulated answers."""

    key: str
    query: MultiwayQuery
    coordinator: ChordNode
    #: The internal two-way stage queries, in pipeline order.
    stage_queries: list[JoinQuery]
    #: Intermediate relations fed by the coordinator (one per non-final
    #: stage).
    intermediate_relations: list[Relation]
    #: Final answer rows, in the user's SELECT order.
    results: set[tuple[Any, ...]] = field(default_factory=set)
    #: Final notifications, in delivery order.
    notifications: list[Notification] = field(default_factory=list)
    #: Intermediate tuples re-published into the network, per stage.
    republished: list[int] = field(default_factory=list)
    _engine: Optional[ContinuousQueryEngine] = None

    def cancel(self) -> None:
        """Best-effort teardown of every stage subscription."""
        if self._engine is None:
            return
        for stage_query in self.stage_queries:
            if stage_query.key in self._engine.queries:
                self._engine.unsubscribe(self.coordinator, stage_query)


def _intermediate_attr(relation: str, attribute: str) -> str:
    """Attribute name of a base attribute inside an intermediate relation."""
    return f"{relation}__{attribute}"


class _PipelineBuilder:
    """Builds the stage queries and wires the coordinator callbacks."""

    def __init__(
        self,
        engine: ContinuousQueryEngine,
        origin: ChordNode,
        query: MultiwayQuery,
    ):
        if engine.config.window is not None:
            raise QueryError(
                "multiway pipelines require an unbounded window (intermediate "
                "publication times would skew sliding-window semantics)"
            )
        self.engine = engine
        self.origin = origin
        self.query = query
        # A stable tag keeps intermediate relation names unique per
        # subscription without leaking unbounded key text into names.
        self.tag = format(
            zlib.crc32(f"{origin.key}/{id(self)}/{query}".encode()), "08x"
        )

    # ------------------------------------------------------------------
    def build(self) -> MultiwaySubscription:
        path = self.query.relations
        stage_queries: list[JoinQuery] = []
        intermediates: list[Relation] = []
        stage_selects: list[tuple[AttrRef, ...]] = []

        for step in range(len(path) - 1):
            select = self._stage_select(step, intermediates)
            stage_query = JoinQuery(
                select=select,
                left=self._left_side(step, intermediates),
                right=self._right_side(step),
            )
            stage_selects.append(select)
            stage_queries.append(stage_query)
            if step < len(path) - 2:
                intermediates.append(self._intermediate_relation(step, select))

        subscription = MultiwaySubscription(
            key="",
            query=self.query,
            coordinator=self.origin,
            stage_queries=[],
            intermediate_relations=intermediates,
            republished=[0] * max(0, len(path) - 2),
            _engine=self.engine,
        )

        # Subscribe every stage *before* wiring listeners so all stages
        # share one insertion time (tuples older than the subscription
        # never count, per the paper's time semantics).
        bound_queries = [
            self.engine.subscribe(self.origin, stage_query)
            for stage_query in stage_queries
        ]
        subscription.stage_queries = bound_queries
        subscription.key = bound_queries[-1].key

        for step, bound in enumerate(bound_queries[:-1]):
            relation = intermediates[step]
            select = stage_selects[step]

            def republish(
                notification: Notification,
                *,
                _relation=relation,
                _select=select,
                _step=step,
            ) -> None:
                values = {}
                for ref, value in zip(_select, notification.row):
                    name = (
                        ref.attribute
                        if ref.relation not in self.query.relations
                        else _intermediate_attr(ref.relation, ref.attribute)
                    )
                    values[name] = value
                subscription.republished[_step] += 1
                self.engine.publish(self.origin, _relation, values)

            self.engine.add_notification_listener(bound.key, republish)

        def collect(notification: Notification) -> None:
            subscription.results.add(notification.row)
            subscription.notifications.append(notification)

        self.engine.add_notification_listener(bound_queries[-1].key, collect)
        return subscription

    # ------------------------------------------------------------------
    def _entity_name(self, step: int, intermediates: list[Relation]) -> str:
        """The left-side relation name of stage ``step``."""
        if step == 0:
            return self.query.relations[0]
        return intermediates[step - 1].name

    def _prefix_ref(
        self, step: int, intermediates: list[Relation], relation: str, attribute: str
    ) -> AttrRef:
        """Reference a prefix attribute as seen by stage ``step``."""
        if step == 0:
            return AttrRef(relation, attribute)
        return AttrRef(
            intermediates[step - 1].name, _intermediate_attr(relation, attribute)
        )

    def _left_side(self, step: int, intermediates: list[Relation]) -> QuerySide:
        condition = self.query.condition_for_step(step)
        prefix_relation = self.query.relations[step]
        attribute = condition.attribute_for(prefix_relation)
        expr = self._prefix_ref(step, intermediates, prefix_relation, attribute)
        filters = self.query.filters_for(prefix_relation) if step == 0 else ()
        return QuerySide(self._entity_name(step, intermediates), expr, tuple(filters))

    def _right_side(self, step: int) -> QuerySide:
        condition = self.query.condition_for_step(step)
        relation = self.query.relations[step + 1]
        attribute = condition.attribute_for(relation)
        return QuerySide(
            relation,
            AttrRef(relation, attribute),
            tuple(self.query.filters_for(relation)),
        )

    def _needed_from_prefix(self, step: int) -> list[tuple[str, str]]:
        """(relation, attribute) pairs of the prefix needed after stage
        ``step``: the user's select attributes plus the next chain
        condition's prefix-side attribute."""
        prefix = set(self.query.relations[: step + 2])
        needed: list[tuple[str, str]] = []
        for ref in self.query.select:
            if ref.relation in prefix:
                needed.append((ref.relation, ref.attribute))
        if step + 1 < len(self.query.conditions):
            next_condition = self.query.condition_for_step(step + 1)
            bridge = self.query.relations[step + 1]
            needed.append((bridge, next_condition.attribute_for(bridge)))
        deduped = []
        for item in needed:
            if item not in deduped:
                deduped.append(item)
        return deduped

    def _stage_select(
        self, step: int, intermediates: list[Relation]
    ) -> tuple[AttrRef, ...]:
        path = self.query.relations
        if step == len(path) - 2:
            # Final stage: produce the user's rows directly.
            refs = []
            for ref in self.query.select:
                if ref.relation == path[-1]:
                    refs.append(ref)
                else:
                    refs.append(
                        self._prefix_ref(step, intermediates, ref.relation, ref.attribute)
                    )
            return tuple(refs)
        refs = []
        right_relation = path[step + 1]
        for relation, attribute in self._needed_from_prefix(step):
            if relation == right_relation:
                refs.append(AttrRef(relation, attribute))
            else:
                refs.append(
                    self._prefix_ref(step, intermediates, relation, attribute)
                )
        return tuple(refs)

    def _intermediate_relation(
        self, step: int, select: tuple[AttrRef, ...]
    ) -> Relation:
        names = []
        for ref in select:
            name = (
                ref.attribute
                if ref.relation not in self.query.relations
                else _intermediate_attr(ref.relation, ref.attribute)
            )
            if name not in names:
                names.append(name)
        return Relation(f"I{step}_{self.tag}", tuple(names))


def subscribe_multiway(
    engine: ContinuousQueryEngine,
    origin: ChordNode,
    query: Union[str, MultiwayQuery],
    schema: Optional[Schema] = None,
) -> MultiwaySubscription:
    """Install an N-way chain join as a two-way pipeline.

    Returns a :class:`MultiwaySubscription`; answer rows accumulate in
    ``subscription.results`` as matching tuples stream in.  Two-relation
    queries degrade gracefully to a single ordinary stage.
    """
    if isinstance(query, str):
        query = parse_multiway_query(query, schema)
    return _PipelineBuilder(engine, origin, query).build()


def brute_force_rows(
    query: MultiwayQuery,
    tuples: Iterable[DataTuple],
    insertion_time: float = 0.0,
) -> set[tuple[Any, ...]]:
    """Ground-truth answer set of an N-way chain (testing oracle).

    Nested-loop over all relation combinations: every constituent tuple
    must satisfy ``pubT >= insertion_time`` and its relation's filters,
    and every chain condition must hold.
    """
    by_relation: dict[str, list[DataTuple]] = {name: [] for name in query.relations}
    for tup in tuples:
        name = tup.relation.name
        if name not in by_relation or tup.pub_time < insertion_time:
            continue
        if all(f.holds(tup) for f in query.filters_for(name)):
            by_relation[name].append(tup)

    rows: set[tuple[Any, ...]] = set()

    def extend(step: int, chosen: dict[str, DataTuple]) -> None:
        if step == len(query.relations):
            row = tuple(
                chosen[ref.relation].value(ref.attribute) for ref in query.select
            )
            rows.add(row)
            return
        relation = query.relations[step]
        for candidate in by_relation[relation]:
            if step > 0:
                condition = query.condition_for_step(step - 1)
                previous = query.relations[step - 1]
                left_value = chosen[previous].value(condition.attribute_for(previous))
                right_value = candidate.value(condition.attribute_for(relation))
                if left_value != right_value:
                    continue
            chosen[relation] = candidate
            extend(step + 1, chosen)
            del chosen[relation]

    extend(0, {})
    return rows
