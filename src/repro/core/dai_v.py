"""DAI-V — value-based double-attribute indexing (Section 4.5).

Designed for type-T2 queries (arbitrary expressions in the join
condition), and covering T1 as well.  The evaluator identifier is the
hash of the *value* the triggered side of the join condition takes:
``VIndex(q'_L) = Hash(str(valJC(q_L, t)))`` — no relation or attribute
prefix.  Tuples are indexed at the attribute level **only**; the
rewriter ships a projection of the trigger tuple together with the
rewritten query (``join(q'_L, t'_1)``), the evaluator matches the
rewritten query against stored projections of the opposite relation,
stores the new projection, and discards the rewritten query.

Because identifiers carry no attribute names, rewritten queries group
very well (less traffic) but all queries sharing a join value land on
the same node (worse load distribution) — the tradeoff Chapter 5
measures.

The ``keyed`` extension prefixes ``Key(q)`` to the value
(``VIndex = Hash(Key(q) + valJC)``): load spreads per query, but
grouping disappears and traffic explodes ("approximately by a factor of
250" in the paper's 10^4-node / 10^5-query setup) — experiment E17.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from ..chord.node import ChordNode
from ..errors import QueryError
from ..sim.messages import JoinMessage, VLIndexMessage
from ..sql.query import RewrittenQuery
from .dai_base import DoubleAttributeIndex
from .tables import StoredProjection

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .engine import ContinuousQueryEngine


class DAIValue(DoubleAttributeIndex):
    """The DAI-V algorithm."""

    name = "dai-v"
    supports_t2 = True
    indexes_tuples_at_value_level = False
    wants_projection = True

    def evaluator_ident(
        self, engine: "ContinuousQueryEngine", rewritten: RewrittenQuery
    ) -> int:
        """``Hash(str(value))`` — or ``Hash(Key(q) + value)`` when keyed."""
        if engine.config.daiv_keyed:
            return engine.network.hash.hash_parts(
                rewritten.original_key, rewritten.required_value
            )
        # ``make_key(v) == str(v)`` for a single part, so the memoized
        # parts lookup computes the same identifier.
        return engine.network.hash.hash_parts(rewritten.required_value)

    def on_join(
        self, engine: "ContinuousQueryEngine", node: ChordNode, msg: JoinMessage
    ) -> None:
        """Match each rewritten query against stored opposite-relation
        projections, then store this trigger's projection.

        The join value is re-checked on every candidate, so identifier
        collisions between different values are harmless.
        """
        state = engine.state(node)
        state.load.messages_processed += 1
        if len(msg.projections) != len(msg.rewritten):
            raise QueryError("DAI-V join message lost its projections")
        notifications = []
        # Batches are grouped per evaluator identifier (§4.3.5), so every
        # rewritten query in the message shares the same ident.
        ident = None
        for rewritten, projection in zip(msg.rewritten, msg.projections):
            candidates = state.projections.candidates(
                rewritten.group_signature, rewritten.relation, rewritten.required_value
            )
            state.load.add_value_level(len(candidates))
            for stored in candidates:
                if not self._within_window(
                    engine, stored.projection.pub_time, rewritten.trigger_pub_time
                ):
                    continue
                if not rewritten.matches(stored.projection, check_value=True):
                    continue
                notification = self._emit(
                    engine,
                    state,
                    rewritten,
                    stored.projection,
                    rewritten.trigger_pub_time,
                )
                if notification is not None:
                    notifications.append(notification)
            if ident is None:
                ident = self.evaluator_ident(engine, rewritten)
            state.projections.add(
                StoredProjection(
                    projection=projection,
                    group_signature=rewritten.group_signature,
                    value=rewritten.required_value,
                    routing_ident=ident,
                )
            )
        engine.deliver_notifications(node, notifications)

    def on_vl_index(
        self, engine: "ContinuousQueryEngine", node: ChordNode, msg: VLIndexMessage
    ) -> None:  # pragma: no cover - defensive
        raise QueryError("DAI-V does not index tuples at the value level")
