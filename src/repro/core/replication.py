"""Attribute-level load balancing via replication (Section 4.7.2,
reconstructed).

The rewriter responsible for ``Hash(R + A)`` is a structural hotspot:
*every* tuple of ``R`` sends it an ``al-index`` message and every query
indexed on ``R.A`` lives there.  The replication scheme splits the
rewriter role over ``k`` identifiers ``Hash(R + A + "#" + j)``:

* a query indexed on ``R.A`` is stored at **all** ``k`` replicas, so no
  replica misses a triggering tuple;
* each incoming tuple sends its ``al-index(t, A)`` message to **one**
  uniformly chosen replica.

Attribute-level filtering load per replica drops by a factor ``~k``
while attribute-level storage grows by ``k`` — the tradeoff measured by
experiments E6/E7 (Figures 5.6/5.7).
"""

from __future__ import annotations

from ..chord.hashing import ConsistentHash, make_key


class ReplicationScheme:
    """Maps (relation, attribute) to its replica rewriter identifiers."""

    def __init__(self, factor: int = 1):
        if factor < 1:
            raise ValueError("replication factor must be >= 1")
        self.factor = factor

    def rewriter_identifiers(
        self, hash_fn: ConsistentHash, relation: str, attribute: str
    ) -> list[int]:
        """All replica identifiers for the attribute-level key.

        With ``factor == 1`` this is the paper's plain
        ``Hash(R + A)`` — the unreplicated algorithms fall out as the
        special case.
        """
        if self.factor == 1:
            return [hash_fn(make_key(relation, attribute))]
        return [
            hash_fn(make_key(relation, attribute, f"#{replica}"))
            for replica in range(self.factor)
        ]

    def pick_identifier(
        self, hash_fn: ConsistentHash, relation: str, attribute: str, rng
    ) -> int:
        """The replica a tuple's ``al-index`` message is sent to."""
        if self.factor == 1:
            return hash_fn(make_key(relation, attribute))
        replica = rng.randrange(self.factor)
        return hash_fn(make_key(relation, attribute, f"#{replica}"))

    def probe_identifier(
        self, hash_fn: ConsistentHash, relation: str, attribute: str
    ) -> int:
        """The replica consulted by index-attribute-choice probes.

        Any fixed replica sees an unbiased ``1/k`` sample of the
        arrival stream, so replica 0 is used for determinism.
        """
        return self.rewriter_identifiers(hash_fn, relation, attribute)[0]
