"""A centralized continuous-join oracle for correctness testing.

The oracle evaluates the same continuous two-way equi-join semantics as
the distributed algorithms, but with a trivial nested-loop engine that
keeps everything in one place.  Property tests feed identical workloads
to the oracle and to each of SAI / DAI-Q / DAI-T / DAI-V and require
the *sets* of answer rows to match exactly.

Answer semantics (see DESIGN.md and
:mod:`repro.core.notifications`): a query's answers form a set of
``(join value, projected row)`` pairs; contributions producing the same
projected row for the same join value collapse — exactly what the
paper's rewritten-query keys collapse.
"""

from __future__ import annotations

from typing import Any, Optional

from ..errors import QueryError
from ..sql.expr import canonical_value, evaluate
from ..sql.query import LEFT, RIGHT, JoinQuery
from ..sql.tuples import DataTuple


class CentralizedOracle:
    """Ground-truth evaluator for continuous two-way equi-joins."""

    def __init__(self, window: Optional[float] = None):
        self.window = window
        self._queries: list[JoinQuery] = []
        self._tuples: dict[str, list[DataTuple]] = {}
        #: query key → set of (join value repr, projected row).
        self.rows: dict[str, set[tuple[str, tuple[Any, ...]]]] = {}

    # ------------------------------------------------------------------
    def subscribe(self, query: JoinQuery) -> None:
        """Register a bound query (key and insertion time must be set)."""
        if not query.key:
            raise QueryError("oracle queries must be bound (missing key)")
        self._queries.append(query)
        self.rows.setdefault(query.key, set())

    def insert(self, tup: DataTuple) -> None:
        """Insert a tuple: join it with every stored opposite tuple."""
        for query in self._queries:
            for label in (LEFT, RIGHT):
                side = query.side(label)
                if side.relation != tup.relation.name:
                    continue
                self._join_one_side(query, label, tup)
        self._tuples.setdefault(tup.relation.name, []).append(tup)

    # ------------------------------------------------------------------
    def _join_one_side(self, query: JoinQuery, label: str, tup: DataTuple) -> None:
        side = query.side(label)
        other = query.side(query.other_label(label))
        if tup.pub_time < query.insertion_time or not side.accepts(tup):
            return
        try:
            this_value = canonical_value(evaluate(side.expr, tup))
        except QueryError:
            return
        for partner in self._tuples.get(other.relation, ()):
            if partner.pub_time < query.insertion_time:
                continue
            if self.window is not None and (
                abs(tup.pub_time - partner.pub_time) > self.window
            ):
                continue
            if not other.accepts(partner):
                continue
            try:
                partner_value = canonical_value(evaluate(other.expr, partner))
            except QueryError:
                continue
            if this_value != partner_value:
                continue
            row = self._project(query, label, tup, partner)
            self.rows[query.key].add((repr(this_value), row))

    @staticmethod
    def _project(
        query: JoinQuery, label: str, tup: DataTuple, partner: DataTuple
    ) -> tuple[Any, ...]:
        this_relation = query.side(label).relation
        row = []
        for ref in query.select:
            source = tup if ref.relation == this_relation else partner
            row.append(source.value(ref.attribute))
        return tuple(row)

    # ------------------------------------------------------------------
    def rows_for(self, query_key: str) -> set[tuple[str, tuple[Any, ...]]]:
        """The answer set of one query so far."""
        return set(self.rows.get(query_key, ()))

    @property
    def total_rows(self) -> int:
        return sum(len(rows) for rows in self.rows.values())
