"""Common steps of the double-attribute index algorithms (Section 4.4.1).

A DAI query is indexed **twice** at the attribute level — once per join
attribute — so it has two rewriters (``q_L`` and ``q_R``) and the
rewriting load of a query is split between them.  Because both
rewriters react to tuples, evaluating rewritten queries exactly as in
SAI would create duplicate notifications (Figure 4.3); DAI-Q and DAI-T
each disable one of the two value-level match directions to restore
exactly-once semantics.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from ..chord.node import ChordNode
from ..sql.query import LEFT, RIGHT, JoinQuery, RewrittenQuery
from .base import Algorithm

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .engine import ContinuousQueryEngine


class DoubleAttributeIndex(Algorithm):
    """Shared behaviour of DAI-Q, DAI-T and DAI-V."""

    def index_labels(
        self, engine: "ContinuousQueryEngine", origin: ChordNode, query: JoinQuery
    ) -> list[str]:
        """Both sides: ``Hash(R + B)`` and ``Hash(S + E)`` (Section 4.4.1)."""
        return [LEFT, RIGHT]

    def evaluator_ident(
        self, engine: "ContinuousQueryEngine", rewritten: RewrittenQuery
    ) -> int:
        """T1 placement, identical to SAI: ``Hash(DisR + DisA + valDA)``."""
        return engine.network.hash.hash_parts(
            rewritten.relation, rewritten.dis_attribute, rewritten.dis_value
        )
