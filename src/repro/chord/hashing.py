"""Consistent hashing for the Chord identifier space.

The paper (Section 2.2) assigns every node and every data item an *m*-bit
identifier produced by a cryptographic hash (SHA-1) of its key.  Keys for
queries and tuples are built by concatenating relation names, attribute
names and attribute values, e.g. ``Hash(R + A + v)``.  We join the parts
with an explicit separator so that ``("RA", "B")`` and ``("R", "AB")``
never collide by accident.
"""

from __future__ import annotations

import hashlib

#: Separator used when concatenating key parts, mirroring the paper's
#: ``+`` operator on strings but unambiguous.
KEY_SEPARATOR = "|"

#: Identifier-space size used by the paper's examples (SHA-1).
SHA1_BITS = 160

#: Default identifier size for simulations.  32 bits keeps identifiers
#: readable in traces while making collisions vanishingly unlikely at
#: simulated scales (thousands of nodes, millions of items).
DEFAULT_M = 32


def make_key(*parts: object) -> str:
    """Build a routing key from its components.

    This is the paper's string concatenation ``R + A + v``: relation
    name, attribute name, attribute value (numeric values are converted
    to strings, as stated in Section 4.2).

    >>> make_key("R", "B", 7)
    'R|B|7'
    """
    return KEY_SEPARATOR.join(str(part) for part in parts)


class ConsistentHash:
    """SHA-1 based consistent hash onto an ``m``-bit identifier circle.

    Instances are callable: ``h("R|B|7")`` returns an integer in
    ``[0, 2**m)``.  The same instance must be shared by every node of a
    network so that all participants agree on key placement.
    """

    __slots__ = ("m", "modulus")

    def __init__(self, m: int = DEFAULT_M):
        if not 8 <= m <= SHA1_BITS:
            raise ValueError(f"m must be in [8, {SHA1_BITS}], got {m}")
        self.m = m
        self.modulus = 1 << m

    def __call__(self, key: str) -> int:
        digest = hashlib.sha1(key.encode("utf-8")).digest()
        return int.from_bytes(digest, "big") % self.modulus

    def hash_parts(self, *parts: object) -> int:
        """Hash the concatenation of ``parts`` (``Hash(R + A + v)``)."""
        return self(make_key(*parts))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"ConsistentHash(m={self.m})"

    def __eq__(self, other: object) -> bool:
        return isinstance(other, ConsistentHash) and other.m == self.m

    def __hash__(self) -> int:
        return hash(("ConsistentHash", self.m))
