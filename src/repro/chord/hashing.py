"""Consistent hashing for the Chord identifier space.

The paper (Section 2.2) assigns every node and every data item an *m*-bit
identifier produced by a cryptographic hash (SHA-1) of its key.  Keys for
queries and tuples are built by concatenating relation names, attribute
names and attribute values, e.g. ``Hash(R + A + v)``.  We join the parts
with an explicit separator so that ``("RA", "B")`` and ``("R", "AB")``
never collide by accident.
"""

from __future__ import annotations

import hashlib
from functools import lru_cache

from ..perf import PERF

#: Separator used when concatenating key parts, mirroring the paper's
#: ``+`` operator on strings but unambiguous.
KEY_SEPARATOR = "|"

#: Identifier-space size used by the paper's examples (SHA-1).
SHA1_BITS = 160

#: Default identifier size for simulations.  32 bits keeps identifiers
#: readable in traces while making collisions vanishingly unlikely at
#: simulated scales (thousands of nodes, millions of items).
DEFAULT_M = 32

#: Bound of the SHA-1 memo below.  Zipf-skewed workloads hash the same
#: handful of ``relation|attribute|value`` keys over and over; 2**16
#: distinct keys comfortably covers the working set of the largest
#: simulated runs while keeping worst-case memory small (a few MB).
HASH_CACHE_SIZE = 1 << 16


@lru_cache(maxsize=HASH_CACHE_SIZE)
def hash_key(key: str) -> int:
    """The full 160-bit SHA-1 digest of ``key``, as an integer.

    Memoized: every routing identifier in the system is derived from
    this digest, and under the paper's skewed workloads the same keys
    recur constantly (hot attribute values, per-relation keys, lease
    renewals).  The digest is cached *unreduced* so one entry serves
    every identifier-space size ``m`` — reducing modulo ``2**m`` is a
    cheap mask applied by the caller.
    """
    return int.from_bytes(hashlib.sha1(key.encode("utf-8")).digest(), "big")


def hash_key_cache_info():
    """Cache statistics of the SHA-1 memo (for tests and perf reports)."""
    return hash_key.cache_info()


def hash_key_cache_clear() -> None:
    """Drop all memoized digests (cold-cache benchmarking, tests)."""
    hash_key.cache_clear()


def make_key(*parts: object) -> str:
    """Build a routing key from its components.

    This is the paper's string concatenation ``R + A + v``: relation
    name, attribute name, attribute value (numeric values are converted
    to strings, as stated in Section 4.2).

    >>> make_key("R", "B", 7)
    'R|B|7'
    """
    # ``map`` over a genexpr: this runs once per indexed key, several
    # hundred thousand times per experiment.
    return KEY_SEPARATOR.join(map(str, parts))


class ConsistentHash:
    """SHA-1 based consistent hash onto an ``m``-bit identifier circle.

    Instances are callable: ``h("R|B|7")`` returns an integer in
    ``[0, 2**m)``.  The same instance must be shared by every node of a
    network so that all participants agree on key placement.
    """

    __slots__ = ("m", "modulus", "_parts_cache")

    def __init__(self, m: int = DEFAULT_M):
        if not 8 <= m <= SHA1_BITS:
            raise ValueError(f"m must be in [8, {SHA1_BITS}], got {m}")
        self.m = m
        self.modulus = 1 << m
        #: Identifier memo keyed by the parts tuple: skips even the key
        #: string concatenation for recurring ``(R, A, v)`` lookups.
        self._parts_cache: dict[tuple, int] = {}

    def __call__(self, key: str) -> int:
        return hash_key(key) % self.modulus

    def hash_parts(self, *parts: object) -> int:
        """Hash the concatenation of ``parts`` (``Hash(R + A + v)``)."""
        cache = self._parts_cache
        ident = cache.get(parts)
        if ident is None:
            ident = hash_key(make_key(*parts)) % self.modulus
            if len(cache) < HASH_CACHE_SIZE:
                cache[parts] = ident
            if PERF.enabled:
                PERF.count("hash.parts_miss")
        elif PERF.enabled:
            PERF.count("hash.parts_hit")
        return ident

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"ConsistentHash(m={self.m})"

    def __eq__(self, other: object) -> bool:
        return isinstance(other, ConsistentHash) and other.m == self.m

    def __hash__(self) -> int:
        return hash(("ConsistentHash", self.m))
