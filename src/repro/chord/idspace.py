"""Arithmetic on the circular Chord identifier space.

All identifier comparisons in Chord are *circular*: identifiers live on a
ring modulo ``2**m`` (paper Section 2.2, Figure 2.1) and ownership /
routing decisions are phrased as membership in ring intervals such as
``(n, successor]``.  This module centralizes that modular arithmetic so
the node, network and routing code never reimplement it.

The interval predicates here are the innermost loop of every routed
message (millions of calls per experiment), so the ring size is
precomputed once and each predicate is a couple of subtractions and one
modulo — no nested method calls.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(frozen=True)
class IdentifierSpace:
    """The ring of identifiers ``0 .. 2**m - 1``.

    Provides interval membership with configurable endpoint inclusion and
    the clockwise distance used to sort ``multisend`` recipient lists.
    """

    m: int
    #: ``2**m``, precomputed — reading an attribute beats re-shifting on
    #: every one of the millions of interval checks per experiment.
    size: int = field(init=False, repr=False, compare=False)

    def __post_init__(self):
        object.__setattr__(self, "size", 1 << self.m)

    def validate(self, ident: int) -> int:
        """Return ``ident`` if it is a valid identifier, else raise."""
        if not 0 <= ident < self.size:
            raise ValueError(f"identifier {ident} outside [0, 2**{self.m})")
        return ident

    def shift(self, ident: int, offset: int) -> int:
        """Clockwise shift: ``(ident + offset) mod 2**m``.

        Used to compute finger targets ``n + 2**(j-1)``.
        """
        return (ident + offset) % self.size

    def distance(self, start: int, end: int) -> int:
        """Clockwise distance from ``start`` to ``end``.

        ``distance(a, a) == 0``; the result is always in ``[0, 2**m)``.
        """
        return (end - start) % self.size

    def in_open(self, ident: int, low: int, high: int) -> bool:
        """Membership in the open ring interval ``(low, high)``.

        When ``low == high`` the interval covers the whole ring except
        the single point ``low`` (the standard Chord convention for a
        one-node ring).
        """
        if low == high:
            return ident != low
        size = self.size
        return 0 < (ident - low) % size < (high - low) % size

    def in_half_open(self, ident: int, low: int, high: int) -> bool:
        """Membership in ``(low, high]`` — the key-ownership interval.

        A node ``n`` with predecessor ``p`` owns exactly the keys in
        ``(p, n]``.  When ``low == high`` the interval is the full ring
        (a single node owns everything).
        """
        if low == high:
            return True
        size = self.size
        return 0 < (ident - low) % size <= (high - low) % size

    def in_closed_open(self, ident: int, low: int, high: int) -> bool:
        """Membership in ``[low, high)`` on the ring."""
        if low == high:
            return True
        size = self.size
        return (ident - low) % size < (high - low) % size

    def sort_clockwise(self, start: int, idents: list[int]) -> list[int]:
        """Sort ``idents`` in ascending clockwise order starting at ``start``.

        This is the first step of the recursive ``multisend`` (Section
        2.3): the sender orders the recipient identifiers clockwise from
        its own identifier so the message can sweep the ring once.
        """
        size = self.size
        return sorted(idents, key=lambda ident: (ident - start) % size)
