"""A single Chord node: identifier, finger table, successor list.

Mirrors Section 2.2 of the paper.  A node is identified by hashing its
key (``id(n) = Hash(Key(n))``), keeps a finger table of at most ``m``
entries where entry ``j`` points at ``successor(id(n) + 2**(j-1))``, a
predecessor pointer, and a successor list of ``r`` entries used for
robustness under failures.

Nodes are passive data holders: routing and ring maintenance live in
:mod:`repro.chord.routing` and :mod:`repro.chord.stabilize` so the
protocol logic is testable in isolation.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable, Optional

from .idspace import IdentifierSpace

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..sim.messages import Message

#: Default length of the successor list.  The paper notes that "in
#: practice even small values of r are enough to achieve robustness".
DEFAULT_SUCCESSOR_LIST_SIZE = 4

MessageHandler = Callable[["ChordNode", "Message"], None]


class ChordNode:
    """One overlay node.

    Parameters
    ----------
    key:
        The node's unique key ``Key(n)`` (e.g. derived from its public
        key and/or IP address, Section 2.2).
    ident:
        ``Hash(Key(n))`` — assigned by the network so every node uses
        the same hash function.
    space:
        The shared identifier space.
    """

    __slots__ = (
        "key",
        "ident",
        "space",
        "ip",
        "alive",
        "predecessor",
        "fingers",
        "successor_list",
        "successor_list_size",
        "finger_cursor",
        "_handlers",
        "app",
        "adopt_hook",
    )

    def __init__(
        self,
        key: str,
        ident: int,
        space: IdentifierSpace,
        ip: str | None = None,
        successor_list_size: int = DEFAULT_SUCCESSOR_LIST_SIZE,
    ):
        self.key = key
        self.ident = space.validate(ident)
        self.space = space
        self.ip = ip if ip is not None else f"10.0.0.0/{key}"
        self.alive = True
        self.predecessor: Optional[ChordNode] = None
        self.fingers: list[Optional[ChordNode]] = [None] * space.m
        self.successor_list: list[ChordNode] = []
        self.successor_list_size = successor_list_size
        #: Round-robin position of the periodic finger refresh
        #: (``fix_next_finger``); node-local so rings never share it.
        self.finger_cursor = 0
        self._handlers: dict[str, MessageHandler] = {}
        #: Application-level state attached by the query-processing
        #: engine (a ``NodeState``); opaque to the DHT layer.
        self.app: object | None = None
        #: Lazy-adoption callback: large-ring engines defer per-node
        #: state and handler registration until a first message arrives
        #: (``deliver`` calls ``adopt_hook(self)`` before giving up).
        self.adopt_hook: Callable[["ChordNode"], object] | None = None

    # ------------------------------------------------------------------
    # Ring pointers
    # ------------------------------------------------------------------
    @property
    def successor(self) -> "ChordNode":
        """The first *live* entry of the successor list.

        Falls back to ``self`` on a one-node ring.  Dead entries are
        skipped (that is the whole point of the successor list,
        Section 2.2).
        """
        for candidate in self.successor_list:
            if candidate.alive:
                return candidate
        return self

    def set_successor(self, node: "ChordNode") -> None:
        """Install ``node`` at the head of the successor list."""
        rest = [entry for entry in self.successor_list if entry is not node]
        self.successor_list = [node, *rest][: self.successor_list_size]

    def refresh_successor_list(self) -> None:
        """Extend the successor list by copying the successor's list.

        This is how Chord keeps ``r`` successors known: ``n``'s list is
        its successor followed by the successor's own list, truncated.
        """
        head = self.successor
        if head is self:
            self.successor_list = []
            return
        merged = [head]
        for entry in head.successor_list:
            if entry is self:
                break
            if entry.alive and entry not in merged:
                merged.append(entry)
        self.successor_list = merged[: self.successor_list_size]

    def owns(self, ident: int) -> bool:
        """True if this node is responsible for ``ident``.

        A node owns the keys in ``(predecessor, self]``.  Without a
        predecessor pointer (fresh node) it conservatively owns nothing
        unless it is alone on the ring.
        """
        predecessor = self.predecessor
        if predecessor is None:
            return self.successor is self
        # Inlined ``space.in_half_open(ident, predecessor, self)`` —
        # ownership is checked once per routing hop.
        low = predecessor.ident
        if low == self.ident:
            return True
        size = self.space.size
        return 0 < (ident - low) % size <= (self.ident - low) % size

    def finger_start(self, j: int) -> int:
        """Identifier ``id(n) + 2**j`` targeted by finger ``j`` (0-based)."""
        return self.space.shift(self.ident, 1 << j)

    def closest_preceding_finger(self, ident: int) -> "ChordNode":
        """The closest live finger strictly between ``self`` and ``ident``.

        Scans the finger table, also considering the successor list;
        returns ``self`` when no better candidate exists (the caller
        then forwards to the successor).

        This is the single hottest function of the whole simulator (one
        call per routing hop), so the ring arithmetic is inlined: a
        candidate lies in the open interval ``(self, ident)`` iff its
        clockwise offset ``d`` from ``self`` satisfies ``0 < d < span``
        where ``span`` is the offset of ``ident`` (``span == size`` for
        the full-ring case ``ident == self.ident``), and ``d`` is also
        the distance being maximized.  Finger tables repeat the same
        node over long stretches, so consecutive duplicates are skipped
        — with the strict ``>`` tie-break a repeat can never win.
        """
        self_ident = self.ident
        size = self.space.size
        span = (ident - self_ident) % size
        if span == 0:
            span = size
        best = self
        best_distance = 0
        previous = None
        for candidate in self.fingers:
            if candidate is None or candidate is previous:
                continue
            previous = candidate
            if not candidate.alive:
                continue
            distance = (candidate.ident - self_ident) % size
            if best_distance < distance < span:
                best = candidate
                best_distance = distance
        for candidate in self.successor_list:
            if candidate is previous:
                continue
            previous = candidate
            if not candidate.alive:
                continue
            distance = (candidate.ident - self_ident) % size
            if best_distance < distance < span:
                best = candidate
                best_distance = distance
        return best

    # ------------------------------------------------------------------
    # Application message delivery
    # ------------------------------------------------------------------
    def register_handler(self, message_type: str, handler: MessageHandler) -> None:
        """Register the application handler for ``message_type``."""
        self._handlers[message_type] = handler

    def deliver(self, message: "Message") -> None:
        """Hand a routed message to the registered application handler."""
        handler = self._handlers.get(message.type)
        if handler is None:
            if self.adopt_hook is not None:
                self.adopt_hook(self)
                handler = self._handlers.get(message.type)
            if handler is None:
                raise LookupError(
                    f"node {self.ident} has no handler for message type "
                    f"{message.type!r}"
                )
        handler(self, message)

    # ------------------------------------------------------------------
    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "up" if self.alive else "down"
        return f"<ChordNode id={self.ident} key={self.key!r} {state}>"
