"""Int-keyed ring snapshot: routing over sorted identifier arrays.

On a stable (exact) ring every routing decision —
``Successor(I)``, ownership, and the closest-preceding-finger choice —
is a pure function of the sorted identifier array, so the per-hop walk
through ``ChordNode`` objects can be replaced by ``bisect`` arithmetic
over one ``list[int]``.  :class:`RingSnapshot` is that function table.

The snapshot replicates the object walk *exactly*, hop for hop:

* ``find_successor`` mirrors :meth:`repro.chord.routing.Router.find_successor`
  (ownership test, successor shortcut, greedy finger forwarding);
* ``walk`` mirrors the recursive-multisend traversal
  (:meth:`repro.chord.routing.Router._walk`), which counts the final
  handover hop only when the walk actually moves;
* ``closest_preceding_finger`` evaluates the finger-table scan of
  :meth:`repro.chord.node.ChordNode.closest_preceding_finger` in
  closed form: on an exact ring finger ``j`` points at
  ``Successor(n + 2**j)``, so the best in-interval finger is the one
  whose power-of-two start lies just below the last ring member before
  the target — two bisects instead of an ``m + r`` entry scan.  The
  successor-list candidates are covered by the same argument (entry
  ``k`` is the ``k``-th clockwise member), with the object scan's
  strict ``>`` tie-break preserved (a finger beats an equal successor
  entry).

Validity is the caller's contract: a snapshot describes one membership
generation of a ring whose pointers are exact (as after
``ChordNetwork.build`` / ``rebuild_ring_state``) and whose members are
all alive.  ``ChordNetwork`` tracks both conditions and hands out
``None`` instead of a stale snapshot (see ``ring_snapshot``); the
differential tests in ``tests/chord/test_snapshot_differential.py``
assert hop-exact agreement with the object walk across random
memberships, wrap-around identifiers and join/leave sequences.
"""

from __future__ import annotations

from bisect import bisect_left, bisect_right, insort

from ..errors import RoutingError


class RingSnapshot:
    """Immutable routing view of one exact ring membership.

    Parameters
    ----------
    idents:
        Sorted, duplicate-free member identifiers (at least one).
    m:
        Identifier-space bits (ring size is ``2**m``).
    successor_list_size:
        ``r`` — the successor-list length the object ring uses; the
        closed-form ``closest_preceding_finger`` needs it to consider
        the same candidate set as the object scan.
    generation:
        Membership generation this snapshot was built from; the owner
        network compares it against its counter to invalidate in O(1).
    """

    __slots__ = (
        "idents",
        "n",
        "m",
        "size",
        "successor_list_size",
        "max_hops",
        "generation",
        "_pos",
    )

    def __init__(
        self,
        idents: list[int],
        m: int,
        successor_list_size: int,
        generation: int = 0,
    ):
        if not idents:
            raise ValueError("a ring snapshot needs at least one member")
        self.idents = idents
        self.n = len(idents)
        self.m = m
        self.size = 1 << m
        self.successor_list_size = successor_list_size
        #: Same give-up bound as the object router.
        self.max_hops = 4 * m + 8
        self.generation = generation
        self._pos = {ident: index for index, ident in enumerate(idents)}

    # ------------------------------------------------------------------
    # Membership / positions
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return self.n

    def __contains__(self, ident: int) -> bool:
        return ident in self._pos

    def position(self, ident: int) -> int:
        """Array position of member ``ident`` (KeyError if absent)."""
        return self._pos[ident]

    def owner_pos(self, ident: int) -> int:
        """Position of ``Successor(ident)`` — the owner of the key."""
        index = bisect_left(self.idents, ident)
        return 0 if index == self.n else index

    def successor_ident(self, ident: int) -> int:
        """``Successor(ident)`` for an arbitrary identifier."""
        return self.idents[self.owner_pos(ident)]

    def node_successor_pos(self, pos: int) -> int:
        """Ring successor of the member at ``pos``."""
        pos += 1
        return 0 if pos == self.n else pos

    def node_predecessor_pos(self, pos: int) -> int:
        """Ring predecessor of the member at ``pos``."""
        return pos - 1 if pos else self.n - 1

    def predecessor_ident(self, ident: int) -> int:
        """Ring predecessor of member ``ident`` (itself on a 1-ring)."""
        return self.idents[self.node_predecessor_pos(self._pos[ident])]

    def owns(self, pos: int, ident: int) -> bool:
        """Ownership test of the member at ``pos``: ``(pred, self]``."""
        if self.n == 1:
            return True
        idents = self.idents
        low = idents[pos - 1]  # negative index wraps, matching the ring
        size = self.size
        return 0 < (ident - low) % size <= (idents[pos] - low) % size

    # ------------------------------------------------------------------
    # Greedy forwarding
    # ------------------------------------------------------------------
    def closest_preceding_finger_pos(self, pos: int, ident: int) -> int:
        """Closed-form replica of the object node's finger scan.

        Returns the position of the node the member at ``pos`` would
        forward toward ``ident``; ``pos`` itself when no finger or
        successor-list entry lies strictly inside ``(self, ident)``.
        """
        idents = self.idents
        n = self.n
        if n == 1:
            return pos
        current = idents[pos]
        size = self.size
        span = (ident - current) % size
        if span == 0:
            span = size
        # Members strictly inside the open interval (current, ident).
        if span == size:
            inside = n - 1
        elif current < ident:
            inside = bisect_left(idents, ident) - (pos + 1)
        else:
            inside = (n - (pos + 1)) + bisect_left(idents, ident)
        if inside == 0:
            return pos
        # The farthest member inside the interval sits ``inside`` steps
        # clockwise; the best finger is Successor(current + 2**j) where
        # 2**j is the highest power of two not exceeding that distance.
        last_pos = pos + inside
        if last_pos >= n:
            last_pos -= n
        farthest = (idents[last_pos] - current) % size
        finger_pos = self.owner_pos((current + (1 << (farthest.bit_length() - 1))) % size)
        finger_distance = (idents[finger_pos] - current) % size
        # Best successor-list entry inside the interval: entry k is the
        # k-th clockwise member, so take the deepest one that fits.
        reach = min(self.successor_list_size, n - 1, inside)
        successor_pos = pos + reach
        if successor_pos >= n:
            successor_pos -= n
        successor_distance = (idents[successor_pos] - current) % size
        # Strict ``>``: the object scan only replaces the best finger
        # with a successor-list entry that is strictly closer.
        if successor_distance > finger_distance:
            return successor_pos
        return finger_pos

    def find_successor(self, start_ident: int, ident: int) -> tuple[int, int]:
        """``(owner position, hops)`` — mirrors ``Router.find_successor``."""
        pos, hops = self._route(self._pos[start_ident], ident, lookup=True)
        return pos, hops

    def walk(self, start_ident: int, ident: int) -> tuple[int, int]:
        """``(owner position, hops)`` — mirrors the multisend ``_walk``."""
        return self._route(self._pos[start_ident], ident, lookup=False)

    def walk_pos(self, start_pos: int, ident: int) -> tuple[int, int]:
        """:meth:`walk` addressed by array position (hot path)."""
        return self._route(start_pos, ident, lookup=False)

    def _route(self, pos: int, ident: int, *, lookup: bool) -> tuple[int, int]:
        """Shared forwarding loop of ``find_successor`` and ``walk``.

        The two object loops differ only in where the successor
        shortcut stops: ``find_successor`` returns the successor
        directly (billing the handover hop), ``_walk`` steps onto the
        successor and re-checks ownership — same node, same hop count,
        so one loop serves both.  ``lookup`` is kept for symmetry with
        the object code and for the hop-bound error message.
        """
        idents = self.idents
        n = self.n
        if n == 1:
            return pos, 0
        size = self.size
        max_hops = self.max_hops
        hops = 0
        while True:
            current = idents[pos]
            # owns: (predecessor, current]
            low = idents[pos - 1]
            if 0 < (ident - low) % size <= (current - low) % size:
                return pos, hops
            successor_pos = pos + 1
            if successor_pos == n:
                successor_pos = 0
            # in_half_open(ident, current, successor)
            if 0 < (ident - current) % size <= (idents[successor_pos] - current) % size:
                return successor_pos, hops + 1
            next_pos = self.closest_preceding_finger_pos(pos, ident)
            if next_pos == pos:
                next_pos = successor_pos
            pos = next_pos
            hops += 1
            if hops > max_hops:
                kind = "lookup" if lookup else "multisend walk"
                raise RoutingError(
                    f"{kind} toward {ident} exceeded {max_hops} hops; "
                    f"ring snapshot is inconsistent"
                )

    # ------------------------------------------------------------------
    # Derivation
    # ------------------------------------------------------------------
    def with_member(self, ident: int) -> "RingSnapshot":
        """A new snapshot with ``ident`` added (test/maintenance helper)."""
        if ident in self._pos:
            raise ValueError(f"identifier {ident} is already a member")
        idents = list(self.idents)
        insort(idents, ident)
        return RingSnapshot(
            idents, self.m, self.successor_list_size, self.generation + 1
        )

    def without_member(self, ident: int) -> "RingSnapshot":
        """A new snapshot with ``ident`` removed (test/maintenance helper)."""
        if ident not in self._pos:
            raise ValueError(f"identifier {ident} is not a member")
        if self.n == 1:
            raise ValueError("cannot empty a ring snapshot")
        idents = list(self.idents)
        idents.pop(bisect_right(idents, ident) - 1)
        return RingSnapshot(
            idents, self.m, self.successor_list_size, self.generation + 1
        )


class SegmentMap:
    """Contiguous-segment shard ownership over a sorted ident array.

    The sharded executor (:mod:`repro.sim.shard`) assigns ring position
    ``p`` of ``n`` members to shard ``p * shards // n`` — contiguous,
    balanced segments.  This map answers "which shard owns identifier
    ``i``?" with one ``bisect`` over the shared sorted array instead of
    materializing an ident→shard dict, which at 10^6 members would cost
    tens of megabytes and a full pass to build even for single-shard
    runs that never ask.

    Holds a *reference* to the caller's array (construction is O(1));
    validity follows the same membership-generation contract as
    :class:`RingSnapshot`.  Asking about a non-member identifier is a
    contract violation and returns the successor's segment.
    """

    __slots__ = ("idents", "shards", "_n")

    def __init__(self, idents: list[int], shards: int):
        if shards < 1:
            raise ValueError("shards must be >= 1")
        if not idents:
            raise ValueError("segment map requires a non-empty ring")
        self.idents = idents
        self.shards = shards
        self._n = len(idents)

    def shard_of(self, ident: int) -> int:
        """The shard owning member ``ident``."""
        return bisect_left(self.idents, ident) * self.shards // self._n
