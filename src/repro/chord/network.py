"""A simulated Chord overlay network (Section 2.2).

:class:`ChordNetwork` owns the shared hash function, identifier space,
router and traffic statistics, plus the node registry.  It supports two
construction modes:

* :meth:`ChordNetwork.build` creates a stable ring directly (correct
  successors, predecessors and finger tables) — the setting of the
  paper's experiments, which evaluate query processing rather than ring
  maintenance;
* incremental :meth:`join` / :meth:`leave` / :meth:`fail` plus
  :meth:`run_stabilization` exercise the actual Chord maintenance
  protocol (stabilize, fix fingers, check predecessor) for
  churn-tolerance studies.

Application data handoff (the Chord rule that a joining node receives
the keys it now owns from its successor, and a voluntarily leaving node
pushes its keys to its successor) is delegated to ``transfer_hook`` so
the query-processing layer can move its tables without the DHT layer
knowing their structure.
"""

from __future__ import annotations

import bisect
from typing import TYPE_CHECKING, Callable, Iterator, Optional

from ..errors import NetworkError
from ..perf import PERF
from ..sim.stats import TrafficStats
from ..transport import Transport
from .hashing import DEFAULT_M, ConsistentHash
from .idspace import IdentifierSpace
from .node import DEFAULT_SUCCESSOR_LIST_SIZE, ChordNode
from .routing import Router
from .snapshot import RingSnapshot
from . import stabilize as maintenance

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..faults.injector import FaultInjector

#: Called as ``transfer_hook(source_node, target_node)`` whenever
#: responsibility moves between two nodes (join or voluntary leave).
TransferHook = Callable[[ChordNode, ChordNode], None]


class ChordNetwork:
    """A complete simulated Chord ring."""

    def __init__(
        self,
        m: int = DEFAULT_M,
        successor_list_size: int = DEFAULT_SUCCESSOR_LIST_SIZE,
        stats: TrafficStats | None = None,
        injector: Optional["FaultInjector"] = None,
    ):
        self.hash = ConsistentHash(m)
        self.space = IdentifierSpace(m)
        self.stats = stats if stats is not None else TrafficStats()
        self.router = Router(self.space, self.stats, injector=injector)
        #: Active message transport (the Section 2.3 API).  Defaults to
        #: the in-process router; :meth:`use_transport` swaps in a live
        #: one (e.g. :class:`repro.net.peer.SocketTransport`) without
        #: the engine or algorithms noticing.
        self.transport: Transport = self.router
        self.successor_list_size = successor_list_size
        self._nodes: dict[int, ChordNode] = {}
        self._sorted_idents: list[int] = []
        self.transfer_hook: Optional[TransferHook] = None
        #: Opt-in snapshot routing (see :meth:`ring_snapshot`).  Off by
        #: default so tests that damage ring pointers directly keep
        #: exercising the object walk unchanged.
        self.fast_routing = False
        #: True while every node's pointers match the membership exactly
        #: (as after :meth:`build` / :meth:`rebuild_ring_state`); any
        #: membership change clears it until the next full rebuild.
        self._ring_exact = False
        #: Finger tables deferred (large fast-routing rings): snapshot
        #: routing never reads them, and building them dominates ring
        #: construction time.  Materialized on the first membership
        #: change so the object walk stays available as a fallback.
        self._lazy_fingers = False
        #: Bumped on every membership change; O(1) snapshot invalidation.
        self._membership_generation = 0
        self._snapshot: Optional[RingSnapshot] = None
        self.router.ring = self

    def use_transport(self, transport: Transport) -> Transport:
        """Install ``transport`` as the active message substrate.

        Returns the previous transport so callers can restore it.  The
        router keeps serving routed lookups (ring maintenance, joins)
        either way; only application message delivery moves.
        """
        previous = self.transport
        self.transport = transport
        return previous

    @property
    def injector(self) -> Optional["FaultInjector"]:
        """The fault oracle the router consults (``None`` = cooperative)."""
        return self.router.injector

    @injector.setter
    def injector(self, injector: Optional["FaultInjector"]) -> None:
        self.router.injector = injector

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def build(
        cls,
        n_nodes: int,
        m: int = DEFAULT_M,
        successor_list_size: int = DEFAULT_SUCCESSOR_LIST_SIZE,
        key_prefix: str = "node",
        injector: Optional["FaultInjector"] = None,
        fast_routing: bool = False,
    ) -> "ChordNetwork":
        """Create a stable ring of ``n_nodes`` nodes.

        Node keys are ``"{key_prefix}-{i}"``; identifier collisions
        (possible at small ``m``) are resolved by salting the key, so
        the ring always has exactly ``n_nodes`` distinct identifiers.

        ``fast_routing=True`` enables snapshot routing (bisect lookups
        over the sorted identifier array instead of per-hop object
        walks) and defers finger-table construction, which dominates
        build time at large ``n_nodes``.
        """
        if n_nodes < 1:
            raise NetworkError("a network needs at least one node")
        network = cls(
            m=m, successor_list_size=successor_list_size, injector=injector
        )
        nodes = network._nodes
        hash_fn = network.hash
        for index in range(n_nodes):
            key = f"{key_prefix}-{index}"
            salt = 0
            ident = hash_fn(key)
            while ident in nodes:
                salt += 1
                ident = hash_fn(f"{key}~{salt}")
            nodes[ident] = ChordNode(
                key if salt == 0 else f"{key}~{salt}",
                ident,
                network.space,
                successor_list_size=successor_list_size,
            )
        # Bulk registration: one sort instead of n_nodes insorts (the
        # repeated-memmove cost is what made >=100k-node builds crawl).
        network._sorted_idents = sorted(nodes)
        network._membership_generation += 1
        network.fast_routing = fast_routing
        network._lazy_fingers = fast_routing
        network.rebuild_ring_state()
        return network

    def _register(self, node: ChordNode) -> None:
        if node.ident in self._nodes:
            raise NetworkError(f"identifier collision at {node.ident}")
        self._materialize_fingers()
        self._nodes[node.ident] = node
        bisect.insort(self._sorted_idents, node.ident)
        self._membership_generation += 1
        self._ring_exact = False

    def _unregister(self, node: ChordNode) -> None:
        self._materialize_fingers()
        del self._nodes[node.ident]
        index = bisect.bisect_left(self._sorted_idents, node.ident)
        self._sorted_idents.pop(index)
        self._membership_generation += 1
        self._ring_exact = False

    def _materialize_fingers(self) -> None:
        """Build the deferred finger tables before membership changes.

        A lazy-finger ring loses snapshot routing the moment membership
        changes (the ring is no longer exact), so the object walk —
        which needs real finger tables — must be ready first.
        """
        if self._lazy_fingers:
            self._lazy_fingers = False
            self.rebuild_ring_state()

    def rebuild_ring_state(self) -> None:
        """Set every pointer (successors, predecessors, fingers) exactly.

        Equivalent to letting stabilization run to quiescence; used by
        :meth:`build` and available to tests that damage the ring.
        """
        idents = self._sorted_idents
        count = len(idents)
        lazy = self._lazy_fingers
        for position, ident in enumerate(idents):
            node = self._nodes[ident]
            successors = [
                self._nodes[idents[(position + offset) % count]]
                for offset in range(1, min(count, node.successor_list_size + 1))
            ]
            node.successor_list = successors
            node.predecessor = self._nodes[idents[(position - 1) % count]] if count > 1 else node
            if not lazy:
                for j in range(self.space.m):
                    node.fingers[j] = self._oracle_successor(node.finger_start(j))
        self._ring_exact = True

    # ------------------------------------------------------------------
    # Snapshot routing
    # ------------------------------------------------------------------
    def enable_fast_routing(self) -> None:
        """Turn on snapshot routing for an already-built exact ring."""
        self.fast_routing = True

    def ring_snapshot(self) -> Optional[RingSnapshot]:
        """The current :class:`RingSnapshot`, or ``None`` when invalid.

        A snapshot is only handed out while ``fast_routing`` is enabled
        *and* the ring is exact (no membership change since the last
        full rebuild).  Rebuilds are O(1)-amortized: membership changes
        just bump a generation counter, and the sorted-array copy
        happens at most once per generation, on first use.
        """
        if not self.fast_routing or not self._ring_exact or not self._nodes:
            return None
        snapshot = self._snapshot
        if snapshot is None or snapshot.generation != self._membership_generation:
            snapshot = RingSnapshot(
                list(self._sorted_idents),
                self.space.m,
                self.successor_list_size,
                generation=self._membership_generation,
            )
            self._snapshot = snapshot
            if PERF.enabled:
                PERF.count("snapshot.rebuilds")
        return snapshot

    def _oracle_successor(self, ident: int) -> ChordNode:
        """Global-knowledge successor; only for construction and checks."""
        idents = self._sorted_idents
        index = bisect.bisect_left(idents, ident)
        if index == len(idents):
            index = 0
        return self._nodes[idents[index]]

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._nodes)

    def __iter__(self) -> Iterator[ChordNode]:
        return iter(self._nodes.values())

    @property
    def nodes(self) -> list[ChordNode]:
        """Live nodes in identifier order."""
        return [self._nodes[ident] for ident in self._sorted_idents]

    def node_at(self, ident: int) -> ChordNode:
        """The node with exactly this identifier (KeyError if absent)."""
        return self._nodes[ident]

    def responsible_node(self, ident: int) -> ChordNode:
        """Ground-truth ``Successor(ident)`` (oracle; not a routed lookup)."""
        if not self._nodes:
            raise NetworkError("network is empty")
        return self._oracle_successor(ident % self.space.size)

    def random_node(self, rng) -> ChordNode:
        """A uniformly random live node, using the caller's RNG."""
        return self._nodes[self._sorted_idents[rng.randrange(len(self._sorted_idents))]]

    # ------------------------------------------------------------------
    # Membership changes
    # ------------------------------------------------------------------
    def join(self, key: str, *, via: ChordNode | None = None) -> ChordNode:
        """A new node joins through bootstrap node ``via`` (Section 2.2).

        The new node discovers its successor by a routed lookup, splices
        itself in, and receives from the successor the application items
        it now owns (``transfer_hook``).  Remaining pointers converge
        through :meth:`run_stabilization`.
        """
        ident = self.hash(key)
        salt = 0
        while ident in self._nodes:
            salt += 1
            ident = self.hash(f"{key}~{salt}")
        node = ChordNode(
            key if salt == 0 else f"{key}~{salt}",
            ident,
            self.space,
            successor_list_size=self.successor_list_size,
        )
        if not self._nodes:
            node.predecessor = node
            self._register(node)
            return node
        bootstrap = via if via is not None else next(iter(self._nodes.values()))
        successor, _ = self.router.find_successor(bootstrap, node.ident)
        node.set_successor(successor)
        node.predecessor = None
        # Seed the finger table with lookups through the bootstrap node.
        for j in range(self.space.m):
            node.fingers[j], _ = self.router.find_successor(bootstrap, node.finger_start(j))
        old_predecessor = successor.predecessor
        self._register(node)
        maintenance.notify(successor, node)
        if old_predecessor is not None and old_predecessor is not successor:
            old_predecessor.set_successor(node)
            node.predecessor = old_predecessor
        node.refresh_successor_list()
        if self.transfer_hook is not None:
            self.transfer_hook(successor, node)
        return node

    def _require_member(self, node: ChordNode) -> None:
        if self._nodes.get(node.ident) is not node:
            raise NetworkError(f"node {node.ident} is not in this network")

    def leave(self, node: ChordNode) -> None:
        """Voluntary departure: keys move to the successor (Section 2.2)."""
        self._require_member(node)
        if len(self._nodes) == 1:
            self._unregister(node)
            node.alive = False
            return
        successor = node.successor
        predecessor = node.predecessor
        if predecessor is not None and predecessor is not node:
            predecessor.set_successor(successor)
        if successor.predecessor is node:
            successor.predecessor = predecessor if predecessor is not node else None
        # Pointers are fixed before the handoff so that the successor
        # already owns the departed range when items are offered to it.
        if self.transfer_hook is not None and successor is not node:
            self.transfer_hook(node, successor)
        self._unregister(node)
        node.alive = False

    def fail(self, node: ChordNode) -> None:
        """Abrupt failure: the node vanishes, its items are lost.

        The paper assumes best-effort semantics and "leaves all the
        handling of failures ... to the underlying DHT"; successor lists
        and stabilization restore routing.
        """
        self._require_member(node)
        self._unregister(node)
        node.alive = False

    # ------------------------------------------------------------------
    # Maintenance
    # ------------------------------------------------------------------
    def run_stabilization(self, rounds: int = 1, *, fix_all_fingers: bool = False) -> None:
        """Run the periodic maintenance protocol on every live node."""
        for _ in range(rounds):
            for node in list(self._nodes.values()):
                maintenance.check_predecessor(node)
                maintenance.stabilize(node)
                if fix_all_fingers:
                    for j in range(self.space.m):
                        maintenance.fix_finger(node, j, self.router)
                else:
                    maintenance.fix_next_finger(node, self.router)

    def ring_is_consistent(self) -> bool:
        """Check that successors/predecessors match the oracle ordering."""
        idents = self._sorted_idents
        count = len(idents)
        for position, ident in enumerate(idents):
            node = self._nodes[ident]
            expected_successor = self._nodes[idents[(position + 1) % count]]
            expected_predecessor = self._nodes[idents[(position - 1) % count]]
            if count > 1 and node.successor is not expected_successor:
                return False
            if count > 1 and node.predecessor is not expected_predecessor:
                return False
        return True
