"""Chord DHT substrate (paper Chapter 2).

Consistent hashing onto an ``m``-bit identifier circle, nodes with
finger tables and successor lists, ring maintenance, and the extended
routing API (``send`` / ``multisend``) the query-processing algorithms
are built on.
"""

from .hashing import ConsistentHash, make_key, DEFAULT_M, KEY_SEPARATOR
from .idspace import IdentifierSpace
from .network import ChordNetwork
from .node import ChordNode
from .routing import Router

__all__ = [
    "ChordNetwork",
    "ChordNode",
    "ConsistentHash",
    "IdentifierSpace",
    "Router",
    "make_key",
    "DEFAULT_M",
    "KEY_SEPARATOR",
]
