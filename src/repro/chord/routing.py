"""Routing primitives: ``send`` and ``multisend`` (Section 2.3).

The paper extends the standard Chord API with two functions used by all
query-processing algorithms:

* ``send(msg, I)`` — deliver ``msg`` to ``Successor(I)`` in
  ``O(log N)`` hops by greedy finger-table forwarding;
* ``multisend(msg, L)`` / ``multisend(M, L)`` — deliver messages to the
  successors of every identifier in ``L``.  The *iterative* variant
  issues ``k`` independent ``send`` calls from the source; the
  *recursive* variant sorts ``L`` clockwise and lets the message sweep
  the ring once, which "has in practice a significantly better
  performance" (compared experimentally in Figure 5.1 / bench E1).

Every forwarding step is counted as one overlay hop in the shared
:class:`~repro.sim.stats.TrafficStats`, so all traffic numbers reported
by the benchmarks come from real routing-table walks.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterable, Sequence

from ..errors import DeliveryError, RoutingError
from ..sim.messages import Message
from ..sim.stats import TrafficStats
from ..transport import Transport
from .idspace import IdentifierSpace
from .node import ChordNode

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..faults.injector import FaultInjector


class Router(Transport):
    """Stateless routing engine over a shared identifier space.

    A single router instance serves a whole simulated network; per-node
    state (fingers, successor lists) lives on the nodes themselves, so
    routing decisions only use information local to each hop, exactly as
    the protocol prescribes.

    When a :class:`~repro.faults.injector.FaultInjector` is attached,
    every final delivery consults it: dropped attempts are retried with
    exponential backoff, a target whose attempts are exhausted is
    reached through its successor list, and a typed
    :class:`~repro.errors.DeliveryError` is raised only after both give
    up.  Without an injector (or with an empty fault plan) the delivery
    path is byte-for-byte the cooperative one, so traffic counts match
    fault-free runs exactly.
    """

    def __init__(
        self,
        space: IdentifierSpace,
        stats: TrafficStats | None = None,
        injector: "FaultInjector | None" = None,
    ):
        self.space = space
        self.stats = stats if stats is not None else TrafficStats()
        #: Optional fault oracle consulted on every delivery.
        self.injector = injector
        #: Routing gives up after this many hops; on a healthy ring the
        #: bound is ``O(log N) <= m``, so hitting the limit means the
        #: ring is broken beyond best-effort repair.
        self.max_hops = 4 * space.m + 8
        #: Back-reference to the owning :class:`ChordNetwork`, set by the
        #: network at construction.  Used only to obtain ring snapshots
        #: for the fast routing path; ``None`` keeps the object walk.
        self.ring = None

    def _live_snapshot(self):
        """The ring snapshot when the fast path may be used, else ``None``.

        The fast path replicates the *cooperative* object walk, so it
        bows out whenever a fault injector can perturb deliveries (the
        object path then owns retries/delays/fallbacks).  Crash churn is
        covered separately: ``fail``/``leave``/``join`` invalidate the
        snapshot at the network.
        """
        ring = self.ring
        if ring is None:
            return None
        injector = self.injector
        if injector is not None and injector.perturbs_delivery:
            return None
        return ring.ring_snapshot()

    # ------------------------------------------------------------------
    # Lookup
    # ------------------------------------------------------------------
    def find_successor(self, start: ChordNode, ident: int) -> tuple[ChordNode, int]:
        """Locate ``Successor(ident)`` from ``start``; returns (node, hops).

        Implements the forwarding rule of Section 2.3: each node hands
        the lookup to the farthest finger that does not overshoot
        ``ident``; the node responsible for ``ident`` keeps it.
        """
        snapshot = self._live_snapshot()
        if snapshot is not None and start.ident in snapshot:
            position, hops = snapshot.find_successor(start.ident, ident)
            return self.ring._nodes[snapshot.idents[position]], hops
        size = self.space.size
        max_hops = self.max_hops
        current = start
        hops = 0
        while True:
            if current.owns(ident):
                return current, hops
            successor = current.successor
            if successor is current:
                return current, hops
            # Inlined ``space.in_half_open(ident, current, successor)``;
            # this test runs once per hop of every routed message.
            low = current.ident
            if low == successor.ident or 0 < (ident - low) % size <= (
                successor.ident - low
            ) % size:
                return successor, hops + 1
            next_hop = current.closest_preceding_finger(ident)
            if next_hop is current or not next_hop.alive:
                next_hop = successor
            current = next_hop
            hops += 1
            if hops > max_hops:
                raise RoutingError(
                    f"lookup for {ident} from node {start.ident} exceeded "
                    f"{max_hops} hops; ring state is inconsistent"
                )

    def lookup(self, start: ChordNode, ident: int, *, account: str = "lookup") -> ChordNode:
        """``find_successor`` that also bills its hops to the stats."""
        node, hops = self.find_successor(start, ident)
        self.stats.record_hops(account, hops)
        return node

    # ------------------------------------------------------------------
    # send()
    # ------------------------------------------------------------------
    def send(self, source: ChordNode, message: Message, ident: int) -> ChordNode:
        """Deliver ``message`` to ``Successor(ident)``; returns the recipient.

        Cost ``O(log N)`` overlay hops, all billed to the message type.
        Under fault injection the recipient may be a successor-list
        fallback of the responsible node (see :meth:`_deliver`).
        """
        target, hops = self.find_successor(source, ident)
        self.stats.record(message.type, hops)
        return self._deliver(message, target)

    def send_direct(self, source: ChordNode, message: Message, target: ChordNode) -> None:
        """One-hop delivery to a node whose address is already known.

        Used for notification delivery via a subscriber's IP address
        (Section 4.6) and by the JFRT optimization (Section 4.7.1).
        ``source`` may equal ``target`` (zero hops).  Direct deliveries
        can be dropped (and are then retried) but are never delayed:
        they model a single point-to-point IP message, not a multi-hop
        overlay route.
        """
        hops = 0 if source is target else 1
        self.stats.record(message.type, hops)
        self._deliver(message, target, may_delay=False)

    # ------------------------------------------------------------------
    # Final-hop delivery under fault injection
    # ------------------------------------------------------------------
    def _deliver(
        self, message: Message, target: ChordNode, *, may_delay: bool = True
    ) -> ChordNode:
        """Hand ``message`` to ``target``, consulting the fault oracle.

        The cooperative fast path (no injector, or an empty plan) is a
        plain ``target.deliver`` — no extra accounting, no RNG draws —
        which is what keeps empty-plan runs identical to the seed.

        With faults active: each attempt may be dropped; dropped
        attempts retry with exponential backoff up to
        ``plan.max_attempts``; once exhausted the message falls back to
        the target's successor list (the nodes that inherit the
        target's range if it is truly gone) with one attempt per live
        successor; when even those drop, a typed ``DeliveryError``
        surfaces.  Surviving messages may then be deferred by injected
        delay instead of landing immediately.
        """
        injector = self.injector
        if injector is None or not injector.perturbs_delivery:
            if not target.alive:
                target = self._successor_fallback(message, target, attempts=1)
            target.deliver(message)
            return target

        recipient = target if target.alive else self._successor_fallback(
            message, target, attempts=1
        )
        attempts = 1
        while injector.should_drop():
            self.stats.record_drop(message.type)
            if attempts >= injector.plan.max_attempts:
                return self._deliver_via_fallback(
                    message, recipient, attempts, may_delay=may_delay
                )
            self.stats.record_retry(message.type)
            injector.note_backoff(attempts)
            attempts += 1
        return self._finish_delivery(message, recipient, may_delay=may_delay)

    def _finish_delivery(
        self, message: Message, recipient: ChordNode, *, may_delay: bool
    ) -> ChordNode:
        """Land a surviving message — now, or deferred by injected delay."""
        if may_delay:
            delay = self.injector.sample_delay()
            if delay > 0.0:
                self.stats.record_delayed(message.type)
                self.injector.defer(message, recipient, delay)
                return recipient
        recipient.deliver(message)
        return recipient

    def _deliver_via_fallback(
        self, message: Message, target: ChordNode, attempts: int, *, may_delay: bool
    ) -> ChordNode:
        """Successor-list routing once direct attempts are exhausted.

        Mirrors Chord's failure handling: the successors inherit the
        failed node's key range, so they are both reachable and (after
        stabilization) the correct owners of the message's identifier.
        Each live successor gets one delivery attempt; when all of them
        drop too, the typed ``DeliveryError`` finally surfaces.
        """
        injector = self.injector
        for candidate in target.successor_list:
            if not candidate.alive or candidate is target:
                continue
            attempts += 1
            self.stats.record_retry(message.type)
            if injector.should_drop():
                self.stats.record_drop(message.type)
                continue
            return self._finish_delivery(message, candidate, may_delay=may_delay)
        raise DeliveryError(message.type, target.ident, attempts)

    def _successor_fallback(
        self, message: Message, target: ChordNode, *, attempts: int
    ) -> ChordNode:
        """The first live successor-list entry of a crashed target."""
        for candidate in target.successor_list:
            if candidate.alive and candidate is not target:
                return candidate
        raise DeliveryError(message.type, target.ident, attempts)

    # ------------------------------------------------------------------
    # multisend()
    # ------------------------------------------------------------------
    def multisend(
        self,
        source: ChordNode,
        messages: Sequence[Message] | Message,
        idents: Sequence[int],
        *,
        recursive: bool = True,
    ) -> list[ChordNode]:
        """Deliver ``messages[j]`` to ``Successor(idents[j])`` for all j.

        ``messages`` may be a single message (the ``multisend(msg, L)``
        form) or one message per identifier (the ``multisend(M, L)``
        form).  Returns the recipient node per identifier, in the order
        of ``idents``.
        """
        message_list = self._pair_messages(messages, idents)
        if recursive:
            return self._multisend_recursive(source, message_list, idents)
        return self._multisend_iterative(source, message_list, idents)

    @staticmethod
    def _pair_messages(
        messages: Sequence[Message] | Message, idents: Sequence[int]
    ) -> list[Message]:
        if isinstance(messages, Message):
            return [messages] * len(idents)
        if len(messages) != len(idents):
            raise ValueError(
                f"multisend(M, L) requires |M| == |L|; "
                f"got {len(messages)} messages for {len(idents)} identifiers"
            )
        return list(messages)

    def _multisend_iterative(
        self, source: ChordNode, messages: list[Message], idents: Sequence[int]
    ) -> list[ChordNode]:
        """The obvious implementation: ``k`` independent sends.

        Kept "for comparison purposes" (Section 2.3); bench E1 measures
        it against the recursive variant.
        """
        return [self.send(source, message, ident) for message, ident in zip(messages, idents)]

    def _multisend_recursive(
        self, source: ChordNode, messages: list[Message], idents: Sequence[int]
    ) -> list[ChordNode]:
        """Single clockwise sweep delivering every message (Section 2.3).

        The source sorts the identifiers clockwise from its own
        position.  The batch travels toward the head of the list; every
        node that turns out to be responsible for the head strips all
        identifiers it owns, delivers their messages, and forwards the
        remainder to the successor of the new head.
        """
        if not idents:
            return []
        snapshot = self._live_snapshot()
        if snapshot is not None and source.ident in snapshot:
            return self._multisend_recursive_fast(snapshot, source, messages, idents)
        order = self.space.sort_clockwise(source.ident, list(idents))
        pending: dict[int, list[int]] = {}
        for position, ident in enumerate(idents):
            pending.setdefault(ident, []).append(position)
        targets: list[ChordNode | None] = [None] * len(idents)

        # ``cursor`` walks the clockwise-sorted list instead of popping
        # the head each round (``list.pop(0)`` is O(n) per identifier).
        cursor = 0
        n_order = len(order)
        current = source
        total_hops = 0
        while cursor < n_order:
            head = order[cursor]
            responsible, hops = self._walk(current, head)
            total_hops += hops
            # The responsible node strips every identifier it owns; they
            # are consecutive at the front of the clockwise-sorted list.
            while cursor < n_order and responsible.owns(order[cursor]):
                ident = order[cursor]
                cursor += 1
                for position in pending[ident]:
                    if targets[position] is None:
                        targets[position] = self._deliver(
                            messages[position], responsible
                        )
                        break
            current = responsible
        self._record_mixed_batch(messages, total_hops)
        return [target if target is not None else current for target in targets]

    def _multisend_recursive_fast(
        self,
        snapshot,
        source: ChordNode,
        messages: list[Message],
        idents: Sequence[int],
    ) -> list[ChordNode]:
        """Snapshot-arithmetic replica of the recursive sweep.

        Same clockwise traversal, same per-head walk semantics, same
        mixed-batch accounting — only the per-hop object walks are
        replaced by bisect lookups over the sorted identifier array, so
        the hop totals and delivery order are identical to the object
        path on any exact ring.
        """
        order = self.space.sort_clockwise(source.ident, list(idents))
        pending: dict[int, list[int]] = {}
        for position, ident in enumerate(idents):
            pending.setdefault(ident, []).append(position)
        targets: list[ChordNode | None] = [None] * len(idents)

        ring_nodes = self.ring._nodes
        ring_idents = snapshot.idents
        walk_pos = snapshot.walk_pos
        owns = snapshot.owns
        cursor = 0
        n_order = len(order)
        pos = snapshot.position(source.ident)
        responsible = source
        total_hops = 0
        while cursor < n_order:
            head = order[cursor]
            pos, hops = walk_pos(pos, head)
            total_hops += hops
            responsible = ring_nodes[ring_idents[pos]]
            while cursor < n_order and owns(pos, order[cursor]):
                ident = order[cursor]
                cursor += 1
                for position in pending[ident]:
                    if targets[position] is None:
                        targets[position] = self._deliver(
                            messages[position], responsible
                        )
                        break
        self._record_mixed_batch(messages, total_hops)
        return [target if target is not None else responsible for target in targets]

    def _record_mixed_batch(self, messages: list[Message], total_hops: int) -> None:
        """Attribute a shared routing path to each message type.

        A tuple insertion ships ``al-index`` and ``vl-index`` messages
        in one recursive sweep; the sweep's hops are split between the
        types in proportion to their message counts so per-type traffic
        stays meaningful.
        """
        type_counts: dict[str, int] = {}
        for message in messages:
            type_counts[message.type] = type_counts.get(message.type, 0) + 1
        total_messages = len(messages)
        remaining = total_hops
        for index, (message_type, count) in enumerate(type_counts.items()):
            if index == len(type_counts) - 1:
                share = remaining
            else:
                share = round(total_hops * count / total_messages)
                remaining -= share
            self.stats.record_batch(message_type, count, share)

    def _walk(self, start: ChordNode, ident: int) -> tuple[ChordNode, int]:
        """Forward from ``start`` until the owner of ``ident`` is reached.

        Unlike :meth:`find_successor` this counts the final handover to
        the responsible node as a hop only if the walk actually moves,
        which is exactly what a recursive (message-carrying) traversal
        costs.
        """
        size = self.space.size
        max_hops = self.max_hops
        current = start
        hops = 0
        while not current.owns(ident):
            successor = current.successor
            if successor is current:
                break
            # Inlined ``space.in_half_open`` — see ``find_successor``.
            low = current.ident
            if low == successor.ident or 0 < (ident - low) % size <= (
                successor.ident - low
            ) % size:
                current = successor
                hops += 1
                break
            next_hop = current.closest_preceding_finger(ident)
            if next_hop is current or not next_hop.alive:
                next_hop = successor
            current = next_hop
            hops += 1
            if hops > max_hops:
                raise RoutingError(
                    f"multisend walk toward {ident} exceeded {max_hops} hops"
                )
        return current, hops


def multisend_cost(
    router: Router,
    source: ChordNode,
    idents: Iterable[int],
    *,
    recursive: bool,
) -> int:
    """Measure the hop cost of a ``multisend`` without side effects.

    Helper for bench E1: routes a no-op message batch and returns the
    hops it consumed (read off the router's stats delta).
    """
    before = router.stats.snapshot()
    probe = Message()

    class _Sink:
        @staticmethod
        def handler(node: ChordNode, message: Message) -> None:
            del node, message

    ident_list = list(idents)
    seen: set[int] = set()
    for ident in ident_list:
        target, _ = router.find_successor(source, ident)
        if id(target) not in seen:
            seen.add(id(target))
            target.register_handler(probe.type, _Sink.handler)
    router.multisend(source, probe, ident_list, recursive=recursive)
    return router.stats.since(before).hops
