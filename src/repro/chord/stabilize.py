"""Chord ring maintenance: stabilize, notify, fix fingers (Section 2.2).

"Every node runs a stabilization algorithm periodically to learn about
nodes that have recently joined the network [...]  Each node n
periodically runs two additional algorithms to check that its finger
table and predecessor pointer is correct."

These functions are deliberately free functions over
:class:`~repro.chord.node.ChordNode` so they can be unit-tested without
a network and scheduled by the simulator as periodic events.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from .node import ChordNode

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .routing import Router

#: Per-node cursor for round-robin finger refresh, keyed by node id.
_finger_cursor: dict[int, int] = {}


def stabilize(node: ChordNode) -> None:
    """One stabilization step for ``node``.

    Ask the successor for its predecessor ``p``; if ``p`` has slipped in
    between, adopt it as the new successor.  Then notify the successor
    of our existence and refresh the successor list.
    """
    if not node.alive:
        return
    successor = node.successor
    if successor is node:
        return
    candidate = successor.predecessor
    if (
        candidate is not None
        and candidate is not node
        and candidate.alive
        and node.space.in_open(candidate.ident, node.ident, successor.ident)
    ):
        node.set_successor(candidate)
        successor = candidate
    notify(successor, node)
    node.refresh_successor_list()


def notify(node: ChordNode, candidate: ChordNode) -> None:
    """``candidate`` tells ``node`` it might be its predecessor."""
    if node is candidate or not candidate.alive:
        return
    current = node.predecessor
    if (
        current is None
        or not current.alive
        or current is node
        or node.space.in_open(candidate.ident, current.ident, node.ident)
    ):
        node.predecessor = candidate


def check_predecessor(node: ChordNode) -> None:
    """Drop the predecessor pointer if that node has failed."""
    if node.predecessor is not None and not node.predecessor.alive:
        node.predecessor = None


def fix_finger(node: ChordNode, index: int, router: "Router") -> None:
    """Recompute finger ``index`` with a routed lookup."""
    if not node.alive:
        return
    target, _ = router.find_successor(node, node.finger_start(index))
    node.fingers[index] = target


def fix_next_finger(node: ChordNode, router: "Router") -> None:
    """Refresh one finger per call, round-robin (the protocol's pacing)."""
    cursor = _finger_cursor.get(id(node), 0)
    fix_finger(node, cursor, router)
    _finger_cursor[id(node)] = (cursor + 1) % node.space.m
