"""Chord ring maintenance: stabilize, notify, fix fingers (Section 2.2).

"Every node runs a stabilization algorithm periodically to learn about
nodes that have recently joined the network [...]  Each node n
periodically runs two additional algorithms to check that its finger
table and predecessor pointer is correct."

These functions are deliberately free functions over
:class:`~repro.chord.node.ChordNode` so they can be unit-tested without
a network and scheduled by the simulator as periodic events.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from .node import ChordNode

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .routing import Router


def stabilize(node: ChordNode) -> None:
    """One stabilization step for ``node``.

    Ask the successor for its predecessor ``p``; if ``p`` has slipped in
    between, adopt it as the new successor.  Then notify the successor
    of our existence and refresh the successor list.
    """
    if not node.alive:
        return
    successor = node.successor
    if successor is node:
        # Every successor-list entry died at once (a burst of crashes
        # wider than the list).  Fall back to the nearest live finger
        # or the predecessor as an interim successor; the normal
        # stabilize/notify cycle then walks it back to the true one.
        successor = _emergency_successor(node)
        if successor is None:
            return
        node.set_successor(successor)
    candidate = successor.predecessor
    if (
        candidate is not None
        and candidate is not node
        and candidate.alive
        and node.space.in_open(candidate.ident, node.ident, successor.ident)
    ):
        node.set_successor(candidate)
        successor = candidate
    notify(successor, node)
    node.refresh_successor_list()


def _emergency_successor(node: ChordNode) -> ChordNode | None:
    """The closest live node clockwise of ``node`` it still knows about.

    Consulted only when the whole successor list is dead; scans the
    finger table plus the predecessor pointer.  Returns ``None`` when
    the node knows no other live node (e.g. a one-node ring).
    """
    best: ChordNode | None = None
    best_distance: int | None = None
    candidates = list(node.fingers)
    if node.predecessor is not None:
        candidates.append(node.predecessor)
    for candidate in candidates:
        if candidate is None or candidate is node or not candidate.alive:
            continue
        distance = node.space.distance(node.ident, candidate.ident)
        if best_distance is None or distance < best_distance:
            best, best_distance = candidate, distance
    return best


def notify(node: ChordNode, candidate: ChordNode) -> None:
    """``candidate`` tells ``node`` it might be its predecessor."""
    if node is candidate or not candidate.alive:
        return
    current = node.predecessor
    if (
        current is None
        or not current.alive
        or current is node
        or node.space.in_open(candidate.ident, current.ident, node.ident)
    ):
        node.predecessor = candidate


def check_predecessor(node: ChordNode) -> None:
    """Drop the predecessor pointer if that node has failed."""
    if node.predecessor is not None and not node.predecessor.alive:
        node.predecessor = None


def fix_finger(node: ChordNode, index: int, router: "Router") -> None:
    """Recompute finger ``index`` with a routed lookup."""
    if not node.alive:
        return
    target, _ = router.find_successor(node, node.finger_start(index))
    node.fingers[index] = target


def fix_next_finger(node: ChordNode, router: "Router") -> None:
    """Refresh one finger per call, round-robin (the protocol's pacing).

    The cursor lives on the node itself: a module-level table keyed by
    ``id(node)`` would leak entries for dead nodes and could alias
    recycled object ids across independently built networks.
    """
    fix_finger(node, node.finger_cursor, router)
    node.finger_cursor = (node.finger_cursor + 1) % node.space.m
