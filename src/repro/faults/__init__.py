"""Fault injection and crash recovery for the overlay and the engine.

The paper evaluates query processing on a cooperative ring; this
package supplies the adversarial counterpart: a declarative, seedable
:class:`FaultPlan` (message loss, delivery delay, crash/restart churn),
the :class:`FaultInjector` the router and simulator consult, and the
:class:`ChaosHarness` recovery choreography (stabilize → refresh
leases → flush) that restores oracle-exact answer sets after crashes.
"""

from .injector import DeferredDelivery, FaultInjector
from .plan import DelaySpec, FaultPlan, NetFaultSpec
from .recovery import ChaosHarness
from .schedule import install_fault_plan

__all__ = [
    "ChaosHarness",
    "DeferredDelivery",
    "DelaySpec",
    "FaultInjector",
    "FaultPlan",
    "NetFaultSpec",
    "install_fault_plan",
]
