"""Declarative fault schedules for chaos experiments.

The paper's evaluation assumes a cooperative ring; this module captures
the *adversarial* settings a real deployment faces — message loss,
delivery delay, abrupt node crashes and crash/restart churn — as one
declarative, seedable :class:`FaultPlan`.  A plan is pure data: the
:class:`~repro.faults.injector.FaultInjector` interprets it, the
:class:`~repro.chord.routing.Router` consults the injector on every
delivery, and :func:`repro.faults.schedule.install_fault_plan` turns the
crash/churn knobs into simulator events.

An all-defaults plan is a guaranteed no-op: the router takes exactly
the code path it takes without an injector, so hop and message counts
are bit-identical to a fault-free run.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(frozen=True)
class DelaySpec:
    """Distribution of injected delivery delays (logical time units).

    With probability ``probability`` a routed delivery is deferred by a
    delay drawn uniformly from ``(minimum, maximum]``; deferred messages
    sit in the injector's delay queue until flushed (or, when a
    simulator is attached, until their scheduled event fires).
    """

    probability: float = 0.0
    minimum: float = 0.0
    maximum: float = 1.0

    def __post_init__(self):
        if not 0.0 <= self.probability <= 1.0:
            raise ValueError("delay probability must be in [0, 1]")
        if self.minimum < 0 or self.maximum < self.minimum:
            raise ValueError("delay bounds must satisfy 0 <= minimum <= maximum")

    @property
    def is_noop(self) -> bool:
        return self.probability == 0.0


@dataclass(frozen=True)
class NetFaultSpec:
    """Wire-level fault knobs of the live (TCP) chaos layer.

    These only matter to :class:`repro.net.chaos.LiveChaos`; the
    simulator never consults them.  All faults are injected on the
    *send* side, before any bytes of the affected attempt reach the
    wire, so a faulted attempt is never partially delivered — the
    retry loop can re-send it without risking duplicate delivery.

    Parameters
    ----------
    connect_refusal_probability:
        Chance that one connection attempt is refused (the live
        analogue of a SYN to a dead or firewalled port).
    frame_fault_probability:
        Chance that one frame-write attempt is faulted.  A faulted
        write is a connection reset, a truncated frame, or a garbled
        frame (chosen uniformly): resets and truncations exercise the
        reconnect path, garbles exercise the receiver's mid-stream
        :class:`~repro.errors.CodecError` teardown.
    """

    connect_refusal_probability: float = 0.0
    frame_fault_probability: float = 0.0

    def __post_init__(self):
        for name in ("connect_refusal_probability", "frame_fault_probability"):
            value = getattr(self, name)
            if not 0.0 <= value < 1.0:
                raise ValueError(f"{name} must be in [0, 1)")

    @property
    def is_noop(self) -> bool:
        return (
            self.connect_refusal_probability == 0.0
            and self.frame_fault_probability == 0.0
        )


@dataclass(frozen=True)
class FaultPlan:
    """Every fault knob of one chaos run, in one seedable record.

    Parameters
    ----------
    loss_probability:
        Chance that any single delivery attempt is dropped.  Dropped
        attempts are retried with backoff (see ``max_attempts``); a
        message is only *lost* when every attempt plus the
        successor-list fallback is exhausted.
    delay:
        Injected delivery-delay distribution (see :class:`DelaySpec`).
    crash_every:
        Crash one node every this many time units (0 disables).  Used
        by :func:`~repro.faults.schedule.install_fault_plan`.
    crash_count:
        Stop crashing after this many victims (0 = unlimited).
    restart_after:
        Crashed nodes rejoin this many time units later under their old
        key (0 disables restarts).
    lease_refresh_every:
        Period of the soft-state lease refresh (query re-install +
        windowed tuple republication); 0 leaves refreshing to the
        caller.
    max_attempts:
        Delivery attempts per target before falling back to the
        successor list.
    backoff_base:
        Logical backoff after attempt ``k`` is ``backoff_base * 2**k``
        (recorded, and respected as extra delay when deliveries are
        deferred through a simulator).
    backoff_jitter:
        Randomize each backoff pause by a factor drawn uniformly from
        ``[1, 1 + backoff_jitter]``.  Desynchronizes retries after a
        partition heals (no thundering herd); 0 keeps the exact
        deterministic backoff shape of a jitter-free plan.  Jitter
        draws come from the injector's private RNG, so jittered runs
        stay reproducible from the plan seed.
    net:
        Wire-level fault knobs for the live TCP chaos layer (see
        :class:`NetFaultSpec`); ignored by the simulator.
    seed:
        Seed of the injector's private RNG; fault decisions never touch
        workload or engine RNG streams, so runs are reproducible.
    """

    loss_probability: float = 0.0
    delay: DelaySpec = field(default_factory=DelaySpec)
    crash_every: float = 0.0
    crash_count: int = 0
    restart_after: float = 0.0
    lease_refresh_every: float = 0.0
    max_attempts: int = 8
    backoff_base: float = 0.05
    backoff_jitter: float = 0.0
    net: NetFaultSpec = field(default_factory=NetFaultSpec)
    seed: int = 0

    def __post_init__(self):
        if not 0.0 <= self.loss_probability < 1.0:
            raise ValueError("loss probability must be in [0, 1)")
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")
        if self.crash_every < 0 or self.restart_after < 0:
            raise ValueError("crash/restart periods must be non-negative")
        if self.backoff_base < 0:
            raise ValueError("backoff_base must be non-negative")
        if self.backoff_jitter < 0:
            raise ValueError("backoff_jitter must be non-negative")

    # ------------------------------------------------------------------
    @property
    def perturbs_delivery(self) -> bool:
        """True when the router must consult the injector per delivery."""
        return self.loss_probability > 0.0 or not self.delay.is_noop

    @property
    def schedules_churn(self) -> bool:
        """True when the plan asks the simulator to crash/restart nodes."""
        return self.crash_every > 0.0

    @property
    def perturbs_wire(self) -> bool:
        """True when the live chaos layer must fault connections/frames."""
        return not self.net.is_noop

    @property
    def is_noop(self) -> bool:
        """An empty plan changes nothing about a run."""
        return (
            not self.perturbs_delivery
            and not self.schedules_churn
            and not self.perturbs_wire
            and self.backoff_jitter == 0.0
        )
