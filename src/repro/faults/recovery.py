"""Crash/recovery choreography for chaos experiments.

:class:`ChaosHarness` bundles the steps every chaos run repeats —
crash a node, let stabilization repair the ring, refresh the soft-state
leases so the re-mapped responsible nodes re-acquire the queries and
value-level entries the crash destroyed, and flush delayed messages —
behind a tiny API used by the chaos tests and examples.

The recovery model (see DESIGN.md, "Failure model & recovery"):

* **Queries are leases.**  The subscriber keeps every query it posed
  (it already must, to recognise notifications) and periodically
  re-installs it.  Installation is idempotent: rewriters deduplicate by
  ``(query key, index side, routing identifier)``, so refreshing a
  healthy ring only confirms state that is already there.
* **Tuples are republished within the window.**  Value-level state is
  derived from published tuples, so republishing the (windowed) tuple
  log re-creates exactly the lost VLTT/VLQT/projection entries.
  Republication messages carry a ``refresh`` flag so rewriters bypass
  the DAI-T never-resend memory and skip arrival-rate accounting, and
  evaluators drop tuples they already store.
* **Notifications deduplicate at the subscriber.**  Re-created answers
  whose ``(query, join value, row)`` identity was already delivered are
  suppressed against the engine's delivered-identity sets, so recovery
  never produces duplicate notifications.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterable, Optional

from .injector import FaultInjector

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..chord.node import ChordNode
    from ..core.engine import ContinuousQueryEngine


class ChaosHarness:
    """Drive crashes and recovery over one engine + injector pair."""

    def __init__(
        self,
        engine: "ContinuousQueryEngine",
        injector: FaultInjector | None = None,
        protect: Iterable[int] = (),
    ):
        self.engine = engine
        self.network = engine.network
        self.injector = injector if injector is not None else FaultInjector()
        if self.network.router.injector is None:
            self.network.router.injector = self.injector
        #: Identifiers never chosen as crash victims (e.g. subscribers).
        self.protected: set[int] = set(protect)
        #: Keys of crashed nodes, oldest first (restart order).
        self.crashed_keys: list[str] = []

    # ------------------------------------------------------------------
    def protect(self, node: "ChordNode") -> None:
        """Exempt ``node`` from random crash selection."""
        self.protected.add(node.ident)

    def choose_victim(self, rng=None) -> Optional["ChordNode"]:
        """A random live, unprotected crash candidate (or ``None``).

        Uses the injector's RNG unless ``rng`` is given — the live
        chaos controller passes its own seeded stream so victim
        selection stays deterministic even though wire-level fault
        draws happen in event-loop order.
        """
        victims = [
            n for n in self.network.nodes if n.ident not in self.protected
        ]
        if len(self.network) <= 1 or not victims:
            return None
        chooser = rng if rng is not None else self.injector.rng
        return victims[chooser.randrange(len(victims))]

    def crash(self, node: Optional["ChordNode"] = None) -> Optional["ChordNode"]:
        """Crash ``node`` (or a random unprotected victim); repair ring.

        Returns the victim, or ``None`` when no node may be crashed
        (everything is protected or the ring would become empty).

        This is the *ring-side* half of a crash (membership, finger
        repair, key-range inheritance); over the live transport,
        :class:`repro.net.chaos.ChaosController` pairs it with the
        socket-side half — aborting the victim's
        :class:`~repro.net.peer.NetPeer` and settling the in-flight
        deliveries its crash destroys.
        """
        if node is None:
            node = self.choose_victim()
            if node is None:
                return None
        self.network.fail(node)
        self.injector.crashes += 1
        self.crashed_keys.append(node.key)
        self.network.run_stabilization(2, fix_all_fingers=True)
        return node

    def restart(self, key: str | None = None) -> Optional["ChordNode"]:
        """Rejoin the oldest crashed node (or ``key``) under its old key."""
        if key is None:
            if not self.crashed_keys:
                return None
            key = self.crashed_keys.pop(0)
        elif key in self.crashed_keys:
            self.crashed_keys.remove(key)
        node = self.network.join(key)
        self.engine.adopt(node)
        self.injector.restarts += 1
        self.network.run_stabilization(1, fix_all_fingers=True)
        return node

    def restart_all(self) -> list["ChordNode"]:
        """Rejoin every crashed node, oldest first; returns the rejoiners."""
        restarted = []
        while self.crashed_keys:
            node = self.restart()
            if node is None:  # pragma: no cover - defensive
                break
            restarted.append(node)
        return restarted

    # ------------------------------------------------------------------
    def settle(self, *, stabilization_rounds: int = 2) -> dict[str, int]:
        """Repair, recover and drain until the system is quiescent.

        Flushes in-flight delayed messages, runs stabilization, then
        refreshes every lease (query re-install + windowed
        republication) with delays quiesced — the replay must land in
        publication order to deterministically re-create every lost
        pair; drops remain active and are absorbed by the router's
        retries.  After ``settle()`` the delivered answer sets equal
        the ground truth a centralized oracle computes over the same
        workload.
        """
        self.injector.flush_deferred()
        self.network.run_stabilization(stabilization_rounds, fix_all_fingers=True)
        with self.injector.quiesce():
            refreshed = self.engine.refresh_leases()
            self.injector.flush_deferred()
        return refreshed
