"""The fault injector: one seeded oracle for every fault decision.

A :class:`FaultInjector` interprets a :class:`~repro.faults.plan.FaultPlan`
for one network.  The router asks it whether each delivery attempt is
dropped and how long it is delayed; the simulator (via
:mod:`repro.faults.schedule`) asks it which nodes crash and when.  All
randomness comes from the injector's private RNG, so fault decisions
never perturb the workload or engine RNG streams and every chaos run is
reproducible from ``(workload seed, plan seed)``.

Delayed deliveries are held in an internal FIFO queue.  When a
:class:`~repro.sim.simulator.Simulator` is attached the queue is not
used — deferred messages become timed events instead.  Without one, the
driving loop calls :meth:`flush_deferred` at its own cadence, which
models in-flight messages landing late (possibly after their target
crashed: flushing re-targets dead recipients through their successor
list, and counts the message as lost when no successor survives).
"""

from __future__ import annotations

from collections import deque
from contextlib import contextmanager
from dataclasses import dataclass
from typing import TYPE_CHECKING, Optional

import random

from .plan import FaultPlan

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..chord.node import ChordNode
    from ..sim.messages import Message
    from ..sim.simulator import Simulator


@dataclass
class DeferredDelivery:
    """One in-flight message: what, to whom, and when it may land."""

    message: "Message"
    target: "ChordNode"
    due: float


class FaultInjector:
    """Seeded fault oracle consulted by the router and the simulator."""

    def __init__(self, plan: FaultPlan | None = None):
        self.plan = plan if plan is not None else FaultPlan()
        self.rng = random.Random(self.plan.seed)
        self.simulator: Optional["Simulator"] = None
        self._deferred: deque[DeferredDelivery] = deque()
        self._quiescent = False
        #: Logical time accumulated in retry backoff (for reporting).
        self.backoff_total = 0.0
        #: Crash/restart events executed on behalf of this injector.
        self.crashes = 0
        self.restarts = 0
        #: Deferred messages that could never land (target and its
        #: whole successor list died before the flush).
        self.messages_lost = 0

    # ------------------------------------------------------------------
    # Router-facing decisions
    # ------------------------------------------------------------------
    @property
    def perturbs_delivery(self) -> bool:
        """False for an empty plan — the router then skips the fault
        path entirely, keeping traffic bit-identical to a clean run."""
        return self.plan.perturbs_delivery

    def should_drop(self) -> bool:
        """Decide whether one delivery attempt is lost in transit."""
        if self.plan.loss_probability <= 0.0:
            return False
        return self.rng.random() < self.plan.loss_probability

    def sample_delay(self) -> float:
        """Injected delivery delay for one message (0 = deliver now)."""
        delay = self.plan.delay
        if delay.is_noop or self._quiescent:
            return 0.0
        if self.rng.random() >= delay.probability:
            return 0.0
        return self.rng.uniform(delay.minimum, delay.maximum) or delay.maximum

    @contextmanager
    def quiesce(self):
        """Suppress injected *delays* (drops stay active) within the block.

        Used by recovery: the soft-state replay must re-execute the
        workload in publication order to deterministically re-create
        every lost pair — delays model transient congestion, and
        recovery explicitly runs after the storm has passed.  Drops are
        still injected (the router's retry loop absorbs them), so the
        recovery path itself stays exercised by the fault plan.
        """
        previous = self._quiescent
        self._quiescent = True
        try:
            yield self
        finally:
            self._quiescent = previous

    def note_backoff(self, attempt: int) -> float:
        """Record the logical backoff before retry ``attempt``."""
        pause = self.jittered(self.plan.backoff_base * (2 ** (attempt - 1)))
        self.backoff_total += pause
        return pause

    def jittered(self, pause: float) -> float:
        """Scale a backoff pause by the plan's jitter factor.

        Jitter-free plans take no RNG draw, so their backoff shape (and
        every downstream fault decision) is byte-identical to pre-jitter
        behaviour.  With jitter, synchronized retries — e.g. every peer
        retrying the instant a partition heals — spread out over
        ``[pause, pause * (1 + jitter)]`` while staying reproducible
        from the plan seed.
        """
        jitter = self.plan.backoff_jitter
        if jitter <= 0.0 or pause <= 0.0:
            return pause
        return pause * (1.0 + self.rng.random() * jitter)

    # ------------------------------------------------------------------
    # Wire-level (live TCP) decisions — see repro.net.chaos
    # ------------------------------------------------------------------
    _FRAME_FAULTS = ("reset", "truncate", "garble")

    def should_refuse_connection(self) -> bool:
        """Decide whether one TCP connection attempt is refused."""
        probability = self.plan.net.connect_refusal_probability
        if probability <= 0.0:
            return False
        return self.rng.random() < probability

    def sample_frame_fault(self) -> Optional[str]:
        """Fault kind for one frame-write attempt, or ``None``.

        Returns one of ``"reset"`` (connection torn down before the
        write), ``"truncate"`` (a partial frame hits the wire, then the
        connection is aborted) or ``"garble"`` (a complete frame with a
        corrupted payload hits the wire).  All three are decided before
        the clean bytes are sent, so the attempt can safely be retried.
        """
        probability = self.plan.net.frame_fault_probability
        if probability <= 0.0 or self.rng.random() >= probability:
            return None
        return self._FRAME_FAULTS[self.rng.randrange(len(self._FRAME_FAULTS))]

    # ------------------------------------------------------------------
    # Deferred (delayed) deliveries
    # ------------------------------------------------------------------
    def attach(self, simulator: "Simulator") -> None:
        """Deliver future deferrals as timed events of ``simulator``."""
        self.simulator = simulator

    def defer(self, message: "Message", target: "ChordNode", delay: float) -> None:
        """Hold ``message`` back by ``delay`` instead of delivering now."""
        if self.simulator is not None:
            self.simulator.after(
                delay, lambda: self._land(message, target), label="delayed-delivery"
            )
            return
        now = 0.0
        self._deferred.append(DeferredDelivery(message, target, now + delay))

    @property
    def pending_deliveries(self) -> int:
        return len(self._deferred)

    def flush_deferred(self, limit: int | None = None) -> int:
        """Deliver queued messages FIFO; returns how many landed.

        Call this from the driving loop to let "slow" messages arrive.
        A target that crashed while the message was in flight receives
        it through its first live successor (the node that owns, or
        will own after stabilization, the crashed range).
        """
        landed = 0
        while self._deferred:
            if limit is not None and landed >= limit:
                break
            entry = self._deferred.popleft()
            self._land(entry.message, entry.target)
            landed += 1
        return landed

    def _land(self, message: "Message", target: "ChordNode") -> None:
        recipient = target
        if not recipient.alive:
            recipient = target.successor  # first live successor-list entry
        if not recipient.alive:
            self.messages_lost += 1
            return
        recipient.deliver(message)
