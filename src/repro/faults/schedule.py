"""Turn a :class:`~repro.faults.plan.FaultPlan` into simulator events.

The simulator side of fault injection: crash a node every
``plan.crash_every`` time units (restarting it ``plan.restart_after``
later when configured) and refresh the soft-state leases every
``plan.lease_refresh_every``.  Victim selection uses the injector's
private RNG so churn schedules are reproducible and independent of the
workload stream.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterable, Optional

from .injector import FaultInjector
from .recovery import ChaosHarness

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..core.engine import ContinuousQueryEngine
    from ..sim.simulator import Simulator


def install_fault_plan(
    simulator: "Simulator",
    injector: FaultInjector,
    engine: Optional["ContinuousQueryEngine"] = None,
    protect: Iterable[int] = (),
    *,
    until: float | None = None,
) -> Optional[ChaosHarness]:
    """Wire ``injector`` into ``simulator``: delays, churn, lease refresh.

    Attaches the injector's deferred-delivery queue to the simulator (so
    injected delays become timed events), schedules the plan's periodic
    crash/restart churn, and — when an ``engine`` is given — schedules
    the periodic lease refresh.  Returns the :class:`ChaosHarness`
    driving the churn, or ``None`` for a churn-free plan without an
    engine.
    """
    plan = injector.plan
    injector.attach(simulator)
    if simulator.network.router.injector is None:
        simulator.network.router.injector = injector

    harness: Optional[ChaosHarness] = None
    if engine is not None:
        harness = ChaosHarness(engine, injector, protect=protect)

    if plan.schedules_churn and harness is not None:
        def crash_one() -> None:
            if plan.crash_count and injector.crashes >= plan.crash_count:
                return
            victim = harness.crash()
            if victim is not None and plan.restart_after > 0:
                simulator.after(
                    plan.restart_after,
                    lambda key=victim.key: harness.restart(key),
                    label="fault-restart",
                )

        simulator.every(plan.crash_every, crash_one, until=until, label="fault-crash")

    if plan.lease_refresh_every > 0 and engine is not None:
        simulator.every(
            plan.lease_refresh_every,
            lambda: engine.refresh_leases(),
            until=until,
            label="lease-refresh",
        )
    return harness
