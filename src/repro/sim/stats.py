"""Traffic and load accounting.

The paper's evaluation (Chapter 5) reports three families of metrics:

* **network traffic** — overlay hops, counted per message as it is
  forwarded through finger tables;
* **filtering load** — how many query/tuple candidates a node examines
  while processing incoming messages;
* **storage load** — how many items (queries, rewritten queries, tuples,
  parked notifications) a node keeps.

:class:`TrafficStats` is fed by the routing layer; per-node filtering
counters live in :class:`NodeLoad`; the module-level helpers aggregate
per-node vectors into the distribution statistics the figures plot.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass
class TrafficSnapshot:
    """An immutable copy of the traffic counters at one point in time."""

    hops: int
    messages: int
    hops_by_type: dict[str, int]
    messages_by_type: dict[str, int]
    messages_dropped: int = 0
    retries: int = 0
    messages_delayed: int = 0


class TrafficStats:
    """Mutable hop/message counters shared by one network's router.

    ``record``/``record_batch`` sit on the per-message hot path of the
    simulator, so this is a ``__slots__`` class over plain dicts: no
    per-instance ``__dict__``, no :class:`collections.Counter` dispatch
    overhead, and no allocation once a message type has been seen.
    """

    __slots__ = (
        "hops",
        "messages",
        "hops_by_type",
        "messages_by_type",
        "messages_dropped",
        "retries",
        "messages_delayed",
        "dropped_by_type",
    )

    def __init__(self) -> None:
        self.hops = 0
        self.messages = 0
        self.hops_by_type: dict[str, int] = {}
        self.messages_by_type: dict[str, int] = {}
        #: Fault accounting (all stay 0 without an active fault plan):
        #: delivery attempts lost in transit, retransmissions after a
        #: loss, and deliveries deferred by injected delay.
        self.messages_dropped = 0
        self.retries = 0
        self.messages_delayed = 0
        self.dropped_by_type: dict[str, int] = {}

    def record(self, message_type: str, hops: int) -> None:
        """Account one routed message that took ``hops`` overlay hops."""
        self.hops += hops
        self.messages += 1
        hops_by_type = self.hops_by_type
        hops_by_type[message_type] = hops_by_type.get(message_type, 0) + hops
        messages_by_type = self.messages_by_type
        messages_by_type[message_type] = messages_by_type.get(message_type, 0) + 1

    def record_batch(self, message_type: str, message_count: int, hops: int) -> None:
        """Account a batch of messages that shared a routing path.

        The recursive ``multisend`` (Section 2.3) delivers ``k`` messages
        while sweeping the ring once, so the hop total is a property of
        the batch rather than of any single message.
        """
        self.hops += hops
        self.messages += message_count
        hops_by_type = self.hops_by_type
        hops_by_type[message_type] = hops_by_type.get(message_type, 0) + hops
        messages_by_type = self.messages_by_type
        messages_by_type[message_type] = (
            messages_by_type.get(message_type, 0) + message_count
        )

    def record_hops(self, message_type: str, hops: int) -> None:
        """Account extra hops that are not a standalone message.

        Used for lookup traffic (e.g. rate probes resolving a rewriter)
        where the figure of interest is hop count only.
        """
        self.hops += hops
        hops_by_type = self.hops_by_type
        hops_by_type[message_type] = hops_by_type.get(message_type, 0) + hops

    def record_drop(self, message_type: str) -> None:
        """Account one delivery attempt lost by fault injection."""
        self.messages_dropped += 1
        dropped = self.dropped_by_type
        dropped[message_type] = dropped.get(message_type, 0) + 1

    def record_retry(self, message_type: str) -> None:
        """Account one retransmission after a dropped attempt."""
        del message_type
        self.retries += 1

    def record_delayed(self, message_type: str) -> None:
        """Account one delivery deferred by injected delay."""
        del message_type
        self.messages_delayed += 1

    def snapshot(self) -> TrafficSnapshot:
        """Copy the current counters."""
        return TrafficSnapshot(
            hops=self.hops,
            messages=self.messages,
            hops_by_type=dict(self.hops_by_type),
            messages_by_type=dict(self.messages_by_type),
            messages_dropped=self.messages_dropped,
            retries=self.retries,
            messages_delayed=self.messages_delayed,
        )

    def since(self, earlier: TrafficSnapshot) -> TrafficSnapshot:
        """Counters accumulated after ``earlier`` was taken."""
        return TrafficSnapshot(
            hops=self.hops - earlier.hops,
            messages=self.messages - earlier.messages,
            hops_by_type={
                key: count - earlier.hops_by_type.get(key, 0)
                for key, count in self.hops_by_type.items()
            },
            messages_by_type={
                key: count - earlier.messages_by_type.get(key, 0)
                for key, count in self.messages_by_type.items()
            },
            messages_dropped=self.messages_dropped - earlier.messages_dropped,
            retries=self.retries - earlier.retries,
            messages_delayed=self.messages_delayed - earlier.messages_delayed,
        )

    def reset(self) -> None:
        """Zero every counter."""
        self.hops = 0
        self.messages = 0
        self.hops_by_type.clear()
        self.messages_by_type.clear()
        self.messages_dropped = 0
        self.retries = 0
        self.messages_delayed = 0
        self.dropped_by_type.clear()


class NodeLoad:
    """Per-node load counters (filtering load; storage is derived).

    ``filtering`` counts query/tuple *candidates examined*, which with
    the two-level hash tables of Section 4.3.5 equals the size of the
    bucket each incoming message is matched against.  ``attribute_level``
    and ``value_level`` split the same quantity by the indexing level so
    the rewriter/evaluator roles can be reported separately.

    One instance per simulated node, touched on every message a node
    processes — ``__slots__`` keeps the million-node footprint and the
    attribute access cost down.
    """

    __slots__ = (
        "filtering",
        "attribute_level_filtering",
        "value_level_filtering",
        "messages_processed",
        "notifications_created",
        "lease_reinstalls",
    )

    def __init__(self) -> None:
        self.filtering = 0
        self.attribute_level_filtering = 0
        self.value_level_filtering = 0
        self.messages_processed = 0
        self.notifications_created = 0
        #: Lease refreshes that actually *restored* a query copy this
        #: node was missing (crash recovery); refreshes of present
        #: copies are deduplicated and not counted.
        self.lease_reinstalls = 0

    def add_attribute_level(self, candidates: int) -> None:
        """Account a filtering step performed by a rewriter."""
        self.filtering += candidates
        self.attribute_level_filtering += candidates

    def add_value_level(self, candidates: int) -> None:
        """Account a filtering step performed by an evaluator."""
        self.filtering += candidates
        self.value_level_filtering += candidates


# ----------------------------------------------------------------------
# Distribution helpers (used by the load-distribution figures)
# ----------------------------------------------------------------------

def sorted_loads(values) -> np.ndarray:
    """Per-node loads sorted descending — the x-axis of Figures 5.10+."""
    array = np.asarray(list(values), dtype=float)
    if array.size == 0:
        return array
    return np.sort(array)[::-1]


def gini(values) -> float:
    """Gini coefficient of a load vector (0 = perfectly balanced).

    A single scalar summary of the load-distribution curves the paper
    plots; used by the benchmarks to assert that one algorithm
    distributes load better than another.
    """
    array = np.sort(np.asarray(list(values), dtype=float))
    if array.size == 0:
        return 0.0
    total = array.sum()
    if total == 0:
        return 0.0
    n = array.size
    ranks = np.arange(1, n + 1)
    return float((2 * (ranks * array).sum()) / (n * total) - (n + 1) / n)


def top_share(values, fraction: float = 0.01) -> float:
    """Fraction of total load carried by the top ``fraction`` of nodes.

    ``top_share(loads, 0.01)`` answers "how much of the work do the 1%
    most loaded nodes do?" — the quantity behind Figure 5.15.
    """
    if not 0 < fraction <= 1:
        raise ValueError("fraction must be in (0, 1]")
    array = sorted_loads(values)
    if array.size == 0:
        return 0.0
    total = array.sum()
    if total == 0:
        return 0.0
    count = max(1, int(round(array.size * fraction)))
    return float(array[:count].sum() / total)


def percentile_series(values, percentiles=(50, 90, 99, 100)) -> dict[int, float]:
    """Selected percentiles of a load vector, highest-load oriented."""
    array = np.asarray(list(values), dtype=float)
    if array.size == 0:
        return {p: 0.0 for p in percentiles}
    return {p: float(np.percentile(array, p)) for p in percentiles}


def participation(values) -> float:
    """Fraction of nodes with non-zero load (network utilization).

    Section 4.1 motivates the two-level scheme by the *network
    utilization*: "the percentage of nodes participating in query
    processing".
    """
    array = np.asarray(list(values), dtype=float)
    if array.size == 0:
        return 0.0
    return float(np.count_nonzero(array) / array.size)
