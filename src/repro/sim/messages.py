"""Overlay message types exchanged by the query-processing protocols.

The paper names five application messages:

* ``query(q, Id(n), IP(n))`` — index a continuous query at a rewriter
  (Section 4.3.1);
* ``al-index(t, A)`` — index tuple ``t`` at the *attribute level* using
  attribute ``A`` (Section 4.2);
* ``vl-index(t, A)`` — index tuple ``t`` at the *value level*;
* ``join(q')`` — reindex a rewritten query at an evaluator (Section
  4.3.2); batched when grouping applies (Section 4.3.5);
* notifications delivered back to subscribers (Section 4.6).

Messages are plain immutable records; the routing layer only looks at
``type`` for accounting.  All message classes are slotted
(``slots=True``): large runs allocate hundreds of thousands of them,
and slots cut both per-instance memory and attribute-access time.

Payload fields (the query of a ``query`` message, the tuple of the
index messages) are **required** — there is deliberately no ``None``
default.  The wire codec (:mod:`repro.net.codec`) reconstructs these
records field by field, and a defaulted payload would let a malformed
frame decode into a half-initialized message that only explodes later,
deep inside a handler on some other peer.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, ClassVar

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..sql.query import JoinQuery, RewrittenQuery
    from ..sql.tuples import DataTuple


@dataclass(frozen=True, slots=True)
class Message:
    """Base class for all overlay messages."""

    type: ClassVar[str] = "message"


@dataclass(frozen=True, slots=True)
class QueryIndexMessage(Message):
    """``query(q, Id(n), IP(n))`` — store ``q`` at a rewriter node.

    ``index_attribute`` names which join attribute this copy of the
    query is indexed under (relevant for the DAI algorithms where the
    same query is indexed twice, once per join attribute).
    """

    type: ClassVar[str] = "query"
    query: "JoinQuery"
    index_side: str = "left"
    #: The identifier this copy was addressed to (one per replica);
    #: stored with the query so key handoff on churn can find it.
    routing_ident: int = 0
    #: True for soft-state lease renewals: the rewriter deduplicates
    #: against its ALQT and counts an actual re-install as recovery.
    refresh: bool = False


@dataclass(frozen=True, slots=True)
class ALIndexMessage(Message):
    """``al-index(t, A)`` — tuple arriving at the attribute level."""

    type: ClassVar[str] = "al-index"
    tuple: "DataTuple"
    index_attribute: str
    #: True when the tuple is republished during crash recovery: the
    #: rewriter then skips arrival-rate accounting and bypasses the
    #: DAI-T never-resend memory so lost evaluator state is rebuilt.
    refresh: bool = False


@dataclass(frozen=True, slots=True)
class VLIndexMessage(Message):
    """``vl-index(t, A)`` — tuple arriving at the value level."""

    type: ClassVar[str] = "vl-index"
    tuple: "DataTuple"
    index_attribute: str
    #: True for crash-recovery republication: evaluators skip storing
    #: tuples they already hold (matching still runs).
    refresh: bool = False


@dataclass(frozen=True, slots=True)
class JoinMessage(Message):
    """``join(q'_1 .. q'_k)`` — rewritten queries bound for one evaluator.

    Grouping (Section 4.3.5) lets a rewriter ship every rewritten query
    that shares the same evaluator in a single message, so the payload
    is a tuple of rewritten queries.  For DAI-V the projected triggering
    tuple rides along (Section 4.5: ``join(q'_L, t'_1)``).
    """

    type: ClassVar[str] = "join"
    rewritten: tuple["RewrittenQuery", ...] = field(default_factory=tuple)
    #: DAI-V only: the projected trigger tuple per rewritten query,
    #: aligned with ``rewritten`` (empty for the other algorithms).
    projections: tuple[Any, ...] = field(default_factory=tuple)


@dataclass(frozen=True, slots=True)
class NotificationMessage(Message):
    """A batch of notifications for one subscriber (Section 4.6)."""

    type: ClassVar[str] = "notification"
    notifications: tuple[Any, ...] = field(default_factory=tuple)
    subscriber_ident: int = 0


@dataclass(frozen=True, slots=True)
class UnsubscribeMessage(Message):
    """Remove every copy of a query from a rewriter's ALQT."""

    type: ClassVar[str] = "unsubscribe"
    query_key: str = ""


@dataclass(frozen=True, slots=True)
class RateProbeMessage(Message):
    """Ask a (candidate) rewriter for its observed tuple-arrival rate.

    Used by the SAI index-attribute selection strategies (Section
    4.3.6): "any node can simply ask the two possible rewriter nodes
    before indexing a query for the rate that tuples arrive".
    """

    type: ClassVar[str] = "rate-probe"
    relation: str = ""
    attribute: str = ""
    reply_box: list = field(default_factory=list, hash=False, compare=False)
