"""Discrete-event queue.

Workload arrival (tuple insertions, query subscriptions), churn and
periodic stabilization are all scheduled as timestamped events.  Message
propagation *within* one event is executed synchronously while hops are
counted through real routing state — the standard design for an overlay
simulator whose reported metrics are hop counts and load counters rather
than wall-clock latencies (see DESIGN.md §5).
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Callable

Action = Callable[[], None]


@dataclass(order=True, slots=True)
class Event:
    """A scheduled action; ordering is (time, sequence-number).

    ``slots=True``: million-event runs allocate one of these per
    scheduled action, and slotted instances are both smaller and faster
    to compare on the heap.
    """

    time: float
    sequence: int
    action: Action = field(compare=False)
    label: str = field(compare=False, default="")


class EventQueue:
    """A priority queue of :class:`Event` with stable FIFO tie-breaking."""

    def __init__(self):
        self._heap: list[Event] = []
        self._counter = itertools.count()

    def __len__(self) -> int:
        return len(self._heap)

    def __bool__(self) -> bool:
        return bool(self._heap)

    def push(self, time: float, action: Action, label: str = "") -> Event:
        """Schedule ``action`` at ``time``; later pushes at the same
        time run in insertion order."""
        event = Event(time, next(self._counter), action, label)
        heapq.heappush(self._heap, event)
        return event

    def pop(self) -> Event:
        """Remove and return the earliest event."""
        return heapq.heappop(self._heap)

    def peek_time(self) -> float | None:
        """Timestamp of the next event, or ``None`` when empty."""
        return self._heap[0].time if self._heap else None
