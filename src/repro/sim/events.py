"""Discrete-event queue.

Workload arrival (tuple insertions, query subscriptions), churn and
periodic stabilization are all scheduled as timestamped events.  Message
propagation *within* one event is executed synchronously while hops are
counted through real routing state — the standard design for an overlay
simulator whose reported metrics are hop counts and load counters rather
than wall-clock latencies (see DESIGN.md §5).
"""

from __future__ import annotations

import heapq
import itertools
from array import array
from dataclasses import dataclass, field
from typing import Callable, Iterator

from ..perf import PERF

Action = Callable[[], None]


@dataclass(order=True, slots=True)
class Event:
    """A scheduled action; ordering is (time, sequence-number).

    ``slots=True``: million-event runs allocate one of these per
    scheduled action, and slotted instances are both smaller and faster
    to compare on the heap.
    """

    time: float
    sequence: int
    action: Action = field(compare=False)
    label: str = field(compare=False, default="")


class EventQueue:
    """A priority queue of :class:`Event` with stable FIFO tie-breaking."""

    def __init__(self):
        self._heap: list[Event] = []
        self._counter = itertools.count()

    def __len__(self) -> int:
        return len(self._heap)

    def __bool__(self) -> bool:
        return bool(self._heap)

    def push(self, time: float, action: Action, label: str = "") -> Event:
        """Schedule ``action`` at ``time``; later pushes at the same
        time run in insertion order."""
        event = Event(time, next(self._counter), action, label)
        heapq.heappush(self._heap, event)
        return event

    def pop(self) -> Event:
        """Remove and return the earliest event."""
        return heapq.heappop(self._heap)

    def peek_time(self) -> float | None:
        """Timestamp of the next event, or ``None`` when empty."""
        return self._heap[0].time if self._heap else None


class EventRing:
    """Flat batch buffer for monotone-time event streams.

    Workload replay is the million-event path, and its events arrive
    already sorted by timestamp — a heap of :class:`Event` objects buys
    nothing there but pays one allocation plus two comparisons per
    event.  The ring instead keeps three parallel, slot-reused arrays —
    a C ``double`` array of times plus object lists of targets and
    payload references — filled a batch at a time from a source
    iterator and swept index-wise by the dispatch loop
    (:meth:`Simulator.run_stream`).

    A refill bumps :attr:`generation` and overwrites the slots in
    place, so across a whole run the buffer allocates nothing after
    the first batch; any stale view of a previous batch is detectable
    by a changed generation.  Timestamps within a batch must be
    non-decreasing (checked), matching the FIFO tie-break the heap
    queue gives same-time events.
    """

    __slots__ = ("times", "targets", "payloads", "capacity", "length", "generation")

    def __init__(self, capacity: int = 4096):
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        self.capacity = capacity
        self.times = array("d", bytes(8 * capacity))
        self.targets: list = [None] * capacity
        self.payloads: list = [None] * capacity
        self.length = 0
        self.generation = 0

    def __len__(self) -> int:
        return self.length

    def refill(
        self,
        source: Iterator[tuple[float, object, object]],
        limit: int | None = None,
    ) -> int:
        """Overwrite the ring with up to ``capacity`` items from ``source``.

        ``source`` yields ``(time, target, payload)`` triples with
        non-decreasing times.  Returns the number of slots filled
        (0 when the source is exhausted).  ``limit`` caps one refill
        below the capacity — the sharded executor uses it to clip
        epochs at barrier-aligned eviction boundaries without resizing
        the buffer.
        """
        times = self.times
        targets = self.targets
        payloads = self.payloads
        capacity = self.capacity
        if limit is not None:
            if limit < 1:
                raise ValueError("refill limit must be >= 1")
            capacity = min(capacity, limit)
        count = 0
        previous = float("-inf")
        for time, target, payload in source:
            if time < previous:
                raise ValueError(
                    f"event ring requires non-decreasing times: "
                    f"{time} after {previous}"
                )
            previous = time
            times[count] = time
            targets[count] = target
            payloads[count] = payload
            count += 1
            if count == capacity:
                break
        self.length = count
        self.generation += 1
        if PERF.enabled and count:
            PERF.count("events.batches")
            PERF.count("events.batched", count)
        return count

    def clear(self) -> None:
        """Drop payload references so a drained ring pins no objects."""
        for index in range(self.length):
            self.targets[index] = None
            self.payloads[index] = None
        self.length = 0
        self.generation += 1
