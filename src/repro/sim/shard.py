"""Sharded segment execution of the streaming phase (DESIGN.md §14–15).

At large ring sizes the cost of an E14-style sweep point is dominated
by handler execution at the nodes, and — fault-free — the stream phase
decomposes into *stages* whose work partitions cleanly across
contiguous ring segments:

* **stage 0** (driver): publish each tuple — compute its ``al-index``/
  ``vl-index`` identifiers and route the multisend over the ring
  snapshot.  Routing touches topology only, so it commutes with every
  handler effect and is billed to the driver's traffic counters
  exactly as a serial run would bill it.
* **stage A** (workers): rewriters process ``al-index`` messages and
  emit ``join`` messages.
* **stage B** (workers): evaluators process ``vl-index`` and ``join``
  messages and *propose* notifications through the engine's
  ``notification_gateway`` instead of shipping them.
* **barrier resolution** (driver): notification candidates from all
  shards are replayed in global causal order against a mirror of the
  subscriber-side duplicate filter, reproducing the serial
  pre-hop suppression (and its hop accounting) exactly.
* **stage C** (workers): subscribers record the surviving deliveries.

**Why determinism survives the sharding.**  Every enqueued message
carries a causal-path timestamp ``ts``: stage-0 publishes of the
``k``-th stream event stamp their deliveries ``(k, 0), (k, 1), ...``
and a handler processing a message stamped ``T`` stamps its own sends
``T + (0,), T + (1,), ...`` — so lexicographic ``ts`` order *is* the
depth-first execution order of the serial simulator.  Each worker
sorts its per-stage inbox by ``ts`` before processing; since a node
lives in exactly one shard, the messages any node processes are a
``ts``-ordered subsequence of the serial order, and per-node state
(the only state handlers mutate besides notifications) evolves
identically.  Notifications are the one cross-node interaction — the
engine-global duplicate filter makes suppression order-dependent —
which is why they are resolved centrally, in global ``ts`` order, at
the B→C barrier.

Batching whole epochs of ``batch_size`` events per stage cycle is
exact for the same reason: stage 0 commutes with handler work, and
everything else is ordered by ``ts`` regardless of which epoch carried
it.

**Lifted modes (DESIGN.md §15).**  Three engine features that early
versions rejected outright now run sharded, each carried by a named
mechanism (see :func:`shard_capabilities`):

* *barrier-aligned eviction* — sliding-window eviction happens only at
  stage barriers, on the serial ``evict_every`` schedule: epochs are
  clipped so each eviction boundary falls exactly at an epoch end, and
  the driver replays the eviction with the serial cutoff
  (``clock.now - window``), broadcast to forked workers which each
  sweep only the nodes they own.  Exact because eviction commutes with
  everything between two boundaries: entries only leave a window heap
  when no future event could match them (event times are monotone), so
  deferring the sweep to the barrier removes the *same* entries the
  serial mid-epoch sweep would have removed.
* *owner-aware replica exchange* — replica placements
  (``Hash(R+A+"#j")``) land on arbitrary segments, but every replica
  store/probe is staged as an ``(ts, time, owner_ident, message)``
  record and routed to its owner's shard through the driver's command
  pipes at the next barrier, so cross-shard replication needs no new
  ordering argument: the records were already partitioned by target.
* *owner-aware JFRT exchange* — a JFRT hit short-circuits routing with
  ``send_direct`` to a cached evaluator that may live on another
  shard; the staged delivery crosses segments the same driver-mediated
  way.  JFRT state itself stays exact because each rewriter (and thus
  its cache) lives in exactly one shard and learns from the same
  ``ts``-ordered message subsequence as the serial run.

The one genuinely unsupported configuration is a perturbing fault
injector: drops/delays/crashes make delivery order nondeterministic,
which the staged replay cannot reproduce.  The differential tests in
``tests/sim/test_shard.py`` and ``tests/sim/test_shard_features.py``
assert bit-identical traffic counters, eviction counts and
notification digests against :func:`repro.bench.harness.run_workload`
for all four algorithms, both in-process and forked.
"""

from __future__ import annotations

import hashlib
import itertools
import random
from dataclasses import dataclass
from typing import TYPE_CHECKING, Iterable, Iterator, Optional

from ..chord.routing import Router
from ..chord.snapshot import SegmentMap
from ..core.notifications import group_by_subscriber
from ..perf import PERF
from .events import EventRing
from .messages import NotificationMessage
from .stats import TrafficSnapshot

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..core.engine import ContinuousQueryEngine
    from ..workload.generator import WorkloadEvent

#: Message type → pipeline stage.  ``query``/``unsubscribe`` only occur
#: during the serial install phase and are deliberately absent: seeing
#: one mid-stream is a protocol violation, not a stage.
STAGE_BY_TYPE = {
    "al-index": "A",
    "vl-index": "B",
    "join": "B",
    "notification": "C",
}

#: Stages whose items a phase may legitimately produce.
PRODUCES = {
    "publish": frozenset("AB"),
    "A": frozenset("B"),
    "B": frozenset(),  # evaluator output goes through the gateway
    "C": frozenset(),
}


class ShardError(RuntimeError):
    """A configuration or protocol violation of the sharded executor."""


class ShardTransport(Router):
    """A router that *stages* final deliveries instead of making them.

    Inherits every routing decision (snapshot fast path included) and
    all traffic accounting from :class:`~repro.chord.routing.Router`;
    only the final hop is replaced: ``_deliver`` classifies the message
    by type and appends ``(ts, time, target_ident, message)`` to the
    stage buffer, to be processed at that node's shard after the next
    barrier.  The ``ts`` counter is shared between deliveries and
    gateway calls so both inherit the serial depth-first order.
    """

    def __init__(self, network):
        router = network.router
        super().__init__(router.space, stats=router.stats, injector=None)
        self.ring = network
        self._ts_prefix: tuple = ()
        self._counter = 0
        self.time = 0.0
        self.allowed: frozenset = PRODUCES["publish"]
        self.staged: dict[str, list] = {"A": [], "B": [], "C": []}
        #: ``(ts, time, from_ident, notifications)`` gateway proposals.
        self.candidates: list = []

    def begin(self, ts: tuple, time: float) -> None:
        """Enter the causal context of one message (or publish event)."""
        self._ts_prefix = ts
        self._counter = 0
        self.time = time

    def next_ts(self) -> tuple:
        ts = self._ts_prefix + (self._counter,)
        self._counter += 1
        return ts

    def drain(self) -> tuple[list, list, list, list]:
        """Collected (stage A, stage B, stage C, candidates); resets."""
        staged = self.staged
        out = (staged["A"], staged["B"], staged["C"], self.candidates)
        self.staged = {"A": [], "B": [], "C": []}
        self.candidates = []
        return out

    def gateway(self, from_node, notifications) -> None:
        """``engine.notification_gateway`` hook: park evaluator output."""
        self.candidates.append(
            (self.next_ts(), self.time, from_node.ident, tuple(notifications))
        )

    def _deliver(self, message, target, *, may_delay: bool = True):
        del may_delay
        stage = STAGE_BY_TYPE.get(message.type)
        if stage is None or stage not in self.allowed:
            raise ShardError(
                f"message type {message.type!r} cannot be staged here; "
                f"sharded execution supports the fault-free stream phase only"
            )
        self.staged[stage].append((self.next_ts(), self.time, target.ident, message))
        return target


def _process_stage(engine, transport: ShardTransport, items: list, phase: str) -> None:
    """Run one shard's inbox for one stage, in causal (``ts``) order."""
    items.sort(key=lambda item: item[0])
    transport.allowed = PRODUCES[phase]
    nodes = engine.network._nodes
    clock = engine.clock
    for ts, time, ident, message in items:
        clock.advance_to(time)
        transport.begin(ts, time)
        nodes[ident].deliver(message)


def delivered_pairs(engine) -> dict[str, list[tuple]]:
    """``engine.delivered`` reduced to the digest-relevant pairs."""
    return {
        key: [(n.join_value_repr, repr(n.row)) for n in batch]
        for key, batch in engine.delivered.items()
    }


def digest_of_pairs(delivered: dict[str, list[tuple]]) -> str:
    """SHA-1 digest over canonical answer sets.

    Byte-compatible with :func:`repro.bench.macro.notification_digest`:
    both hash ``repr`` of the sorted ``(key, sorted(pairs))`` list.
    """
    canonical = sorted((key, sorted(pairs)) for key, pairs in delivered.items())
    return hashlib.sha1(repr(canonical).encode("utf-8")).hexdigest()


@dataclass
class ShardRunResult:
    """Metrics of one sharded stream run (macro-benchmark vocabulary)."""

    install_traffic: TrafficSnapshot
    stream_traffic: TrafficSnapshot
    notifications_delivered: int
    notification_digest: str
    suppressed_renotifications: int
    duplicate_deliveries: int
    events: int
    shards: int
    #: Sliding-window items evicted at barriers (compares bit-for-bit
    #: with the serial :attr:`~repro.bench.harness.RunResult.evictions`
    #: when both runs use the same ``evict_every``).
    evictions: int = 0
    #: Worker-produced records whose next-stage owner was a *different*
    #: shard — the owner-aware exchange volume (cross-segment join
    #: batches, replica probes and JFRT direct sends).  Always 0 for
    #: in-process (single-segment) runs.
    exchange_records: int = 0
    #: Lifted modes this configuration engaged (see
    #: :func:`shard_capabilities`).
    features: tuple = ()

    def to_row(self) -> dict:
        """Stable JSON-safe dict of this run (no pickling; see
        :mod:`repro.bench.rows` for the stability contract)."""
        from ..bench.rows import ROW_VERSION, traffic_to_row

        return {
            "row_version": ROW_VERSION,
            "kind": "shard",
            "install_traffic": traffic_to_row(self.install_traffic),
            "stream_traffic": traffic_to_row(self.stream_traffic),
            "notifications_delivered": self.notifications_delivered,
            "notification_digest": self.notification_digest,
            "suppressed_renotifications": self.suppressed_renotifications,
            "duplicate_deliveries": self.duplicate_deliveries,
            "events": self.events,
            "shards": self.shards,
            "evictions": self.evictions,
            "exchange_records": self.exchange_records,
            "features": list(self.features),
        }

    @classmethod
    def from_row(cls, row: dict) -> "ShardRunResult":
        """Inverse of :meth:`to_row` (unknown keys ignored)."""
        from ..bench.rows import traffic_from_row

        return cls(
            install_traffic=traffic_from_row(row["install_traffic"]),
            stream_traffic=traffic_from_row(row["stream_traffic"]),
            notifications_delivered=row["notifications_delivered"],
            notification_digest=row["notification_digest"],
            suppressed_renotifications=row.get("suppressed_renotifications", 0),
            duplicate_deliveries=row.get("duplicate_deliveries", 0),
            events=row.get("events", 0),
            shards=row.get("shards", 1),
            evictions=row.get("evictions", 0),
            exchange_records=row.get("exchange_records", 0),
            features=tuple(row.get("features", ())),
        )


class _Resolver:
    """Replays the serial pre-hop suppression at the B→C barrier.

    Mirrors :meth:`ContinuousQueryEngine.deliver_notifications` over a
    driver-local identity filter (separate from the engine's, which the
    subscriber-side ``_record_delivery`` still maintains at stage C):
    candidates are visited in global ``ts`` order, each subscriber
    group is filtered, surviving identities join the mirror *before*
    the next group is examined — exactly the serial interleaving of
    filtering and synchronous delivery.
    """

    def __init__(self, engine):
        self.engine = engine
        self.mirror: dict[str, set] = {}
        self.suppressed = 0

    def resolve(self, candidates: list, stats) -> list:
        """Turn candidates into stage-C items, billing notification hops."""
        candidates.sort(key=lambda c: c[0])
        engine = self.engine
        queries = engine.queries
        subscriber_nodes = engine._subscriber_nodes
        presence = engine._presence
        mirror = self.mirror
        items = []
        for ts, time, from_ident, notifications in candidates:
            for index, (subscriber_ident, batch) in enumerate(
                group_by_subscriber(notifications).items()
            ):
                live = []
                for notification in batch:
                    if notification.query_key not in queries:
                        continue
                    seen = mirror.get(notification.query_key)
                    if seen is not None and notification.identity in seen:
                        self.suppressed += 1
                        continue
                    live.append(notification)
                if not live:
                    continue
                for notification in live:
                    mirror.setdefault(notification.query_key, set()).add(
                        notification.identity
                    )
                target = subscriber_nodes.get(subscriber_ident)
                if (
                    target is None
                    or not target.alive
                    or not presence.get(subscriber_ident, False)
                ):
                    raise ShardError(
                        "sharded execution requires online, fault-free "
                        "subscribers (routed notification fallback is a "
                        "faulted-run path)"
                    )
                message = NotificationMessage(
                    notifications=tuple(live), subscriber_ident=subscriber_ident
                )
                # ``send_direct`` accounting: one point-to-point hop,
                # zero when the evaluator is the subscriber.
                stats.record(message.type, 0 if from_ident == subscriber_ident else 1)
                items.append((ts + (index,), time, subscriber_ident, message))
        return items


#: Engine features that once were blanket ``ShardError`` preconditions,
#: mapped to the lifted execution mode that now carries each of them
#: (mechanisms in the module docstring / DESIGN.md §15).
CAPABILITIES = {
    "window": "barrier-aligned eviction",
    "replication": "owner-aware replica exchange",
    "jfrt": "owner-aware JFRT exchange",
}


def shard_capabilities(engine) -> tuple[str, ...]:
    """Names of the lifted modes this engine configuration engages.

    Empty for the stripped (unbounded window, ``replication_factor=1``,
    JFRT off) configuration the sharded executor originally supported.
    The active set is recorded on :attr:`ShardRunResult.features` so
    benchmark reports show which mechanisms a number exercised.
    """
    config = engine.config
    features = []
    if config.window is not None:
        features.append(CAPABILITIES["window"])
    if config.replication_factor != 1:
        features.append(CAPABILITIES["replication"])
    if config.jfrt_capacity != 0:
        features.append(CAPABILITIES["jfrt"])
    return tuple(features)


def _validate(engine) -> None:
    """Reject the one configuration no lifted mode can carry.

    A perturbing fault injector (drops, delays, crashes) makes delivery
    order — and therefore the causal-timestamp replay — nondeterministic
    at the transport, so faulted studies must run through the serial
    simulator.  Everything else, including sliding windows, replication
    and the JFRT, is handled by the lifted modes named in
    :func:`shard_capabilities`.
    """
    injector = engine.network.injector
    if injector is not None and injector.perturbs_delivery:
        raise ShardError(
            "sharded execution is fault-free only: a perturbing fault "
            "injector reorders deliveries, which the staged "
            "causal-timestamp replay cannot reproduce; run faulted "
            "configurations through the serial simulator"
        )


def run_sharded(
    engine: "ContinuousQueryEngine",
    events: "Iterable[WorkloadEvent]",
    *,
    shards: int = 1,
    batch_size: int = 512,
    seed: int = 1,
    evict_every: int = 64,
) -> ShardRunResult:
    """Replay a workload with the stream phase sharded across segments.

    ``events`` is any iterable of
    :class:`~repro.workload.generator.WorkloadEvent` (a materialized
    :class:`~repro.workload.generator.Workload` or the streaming
    :func:`~repro.workload.generator.iter_workload_events`).  The
    warmup/install prefix — everything up to the last query — is
    replayed serially in-process, exactly like
    :func:`repro.bench.harness.run_workload` (same RNG draw order for
    origin nodes).  The remaining tuple stream runs in epochs of
    ``batch_size`` events through the staged pipeline described in the
    module docstring, on ``shards`` forked workers (``1`` = staged but
    in-process, which is also the portability fallback when fork is
    unavailable).

    With a sliding window configured, ``evict_every`` replays the
    serial eviction schedule of :func:`~repro.bench.harness.run_workload`
    at stage barriers: the event counter spans the install prefix and
    the stream, epochs are clipped so boundaries land exactly between
    epochs, and a final sweep runs after the last event.

    Returns metrics bit-comparable with a serial
    :func:`~repro.bench.harness.run_workload` of the same engine
    configuration and ``evict_every``: traffic counters, notification
    digest, delivery, eviction and suppression counts.
    """
    from ..bench.parallel import fork_available

    _validate(engine)
    if evict_every < 1:
        raise ShardError("evict_every must be >= 1")
    features = shard_capabilities(engine)
    network = engine.network
    rng = random.Random(seed)
    clock = engine.clock
    window = engine.config.window

    # ------------------------------------------------------------------
    # Serial install phase: warmup tuples + query subscriptions.
    # ------------------------------------------------------------------
    source: Iterator = iter(events)
    stream_head = None
    seen_query = False
    install_events = 0
    events_since_evict = 0
    evictions = 0
    for event in source:
        if event.kind == "tuple" and seen_query:
            stream_head = event
            break
        clock.advance_to(event.time)
        origin = network.random_node(rng)
        install_events += 1
        if event.kind == "query":
            seen_query = True
            engine.subscribe(origin, event.payload)
        else:
            relation, values = event.payload
            engine.publish(origin, relation, values)
        events_since_evict += 1
        if window is not None and events_since_evict >= evict_every:
            evictions += engine.evict_expired()
            events_since_evict = 0
    install_snapshot = network.stats.snapshot()

    if shards > 1 and not fork_available():  # pragma: no cover - platform
        shards = 1

    # Shard ownership: contiguous segments of the sorted identifier
    # array, resolved by bisect on demand (no per-ident dict — at 10^6
    # members that dict alone would dwarf the workload's state).  The
    # map is created before the fork so workers share the array.
    segment = SegmentMap(network._sorted_idents, shards)
    shard_of = segment.shard_of

    transport = ShardTransport(network)
    previous_transport = network.use_transport(transport)
    engine.notification_gateway = transport.gateway
    resolver = _Resolver(engine)

    pool = None
    if shards > 1:
        from ..bench.parallel import ShardPool

        def worker_main(conn, index):
            worker_transport = ShardTransport(network)
            network.use_transport(worker_transport)
            engine.notification_gateway = worker_transport.gateway
            baseline = network.stats.snapshot()
            duplicates_baseline = engine.duplicate_deliveries
            try:
                while True:
                    command = conn.recv()
                    if command[0] == "stage":
                        _, phase, items = command
                        _process_stage(engine, worker_transport, items, phase)
                        a, b, c, candidates = worker_transport.drain()
                        conn.send(("produced", a + b + c, candidates))
                    elif command[0] == "evict":
                        # Barrier-aligned eviction: sweep only the nodes
                        # this shard owns, against the driver's cutoff
                        # (worker clocks can lag the boundary when the
                        # last events produced no work for them).
                        _, cutoff = command
                        evicted = 0
                        for ident, state in engine.adopted_states():
                            if shard_of(ident) == index:
                                evicted += state.evict_expired(cutoff)
                        conn.send(("evicted", evicted))
                    elif command[0] == "finish":
                        delivered = {
                            key: pairs
                            for key, pairs in delivered_pairs(engine).items()
                            if shard_of(
                                engine.queries[key].subscriber.ident
                            ) == index
                        }
                        conn.send(
                            (
                                "final",
                                network.stats.since(baseline),
                                delivered,
                                engine.duplicate_deliveries - duplicates_baseline,
                            )
                        )
                        return
                    else:  # pragma: no cover - protocol guard
                        raise ShardError(f"unknown command {command[0]!r}")
            except Exception as error:  # pragma: no cover - debug aid
                import traceback

                conn.send(("error", f"{error}\n{traceback.format_exc()}"))
                raise
            finally:
                conn.close()

        pool = ShardPool(shards, worker_main)

    exchange_records = 0

    def run_stage(phase: str, items: list) -> tuple[list, list]:
        """Execute one stage everywhere; returns (produced, candidates)."""
        nonlocal exchange_records
        if pool is None:
            _process_stage(engine, transport, items, phase)
            a, b, c, candidates = transport.drain()
            return a + b + c, candidates
        partitions: list[list] = [[] for _ in range(shards)]
        for item in items:
            partitions[shard_of(item[2])].append(item)
        pool.scatter([("stage", phase, part) for part in partitions])
        if PERF.enabled:
            PERF.count("shard.barrier.exchanges")
            PERF.count("shard.barrier.items", len(items))
        produced: list = []
        candidates: list = []
        for index, reply in enumerate(pool.gather()):
            if reply[0] == "error":
                raise ShardError(f"shard worker failed:\n{reply[1]}")
            # Owner-aware exchange: records whose next-stage owner is a
            # different shard cross segments through these pipes — the
            # cross-shard join batches, replica probes and JFRT direct
            # sends that used to be rejected outright.
            crossed = sum(1 for item in reply[1] if shard_of(item[2]) != index)
            if crossed:
                exchange_records += crossed
                if PERF.enabled:
                    PERF.count("shard.exchange.records", crossed)
            produced.extend(reply[1])
            candidates.extend(reply[2])
        return produced, candidates

    def barrier_evict() -> int:
        """One serial-schedule eviction sweep, replayed at a barrier."""
        cutoff = clock.now - window
        if PERF.enabled:
            PERF.count("shard.evictions.replayed")
        if pool is None:
            return engine.evict_expired(cutoff)
        pool.broadcast(("evict", cutoff))
        evicted = 0
        for reply in pool.gather():
            if reply[0] == "error":
                raise ShardError(f"shard worker failed:\n{reply[1]}")
            evicted += reply[1]
        return evicted

    def split_stages(items: list) -> tuple[list, list]:
        stage_a, stage_b = [], []
        for item in items:
            (stage_a if STAGE_BY_TYPE[item[3].type] == "A" else stage_b).append(item)
        return stage_a, stage_b

    # ------------------------------------------------------------------
    # Epoch loop over the tuple stream: a reused EventRing batch buffer
    # (DESIGN.md §14) whose refills are clipped so that barrier-aligned
    # eviction boundaries always coincide with epoch ends.
    # ------------------------------------------------------------------
    stream: Iterator = ((event.time, event.kind, event.payload) for event in source)
    if stream_head is not None:
        head = (stream_head.time, stream_head.kind, stream_head.payload)
        stream = itertools.chain((head,), stream)
        stream_head = None
    ring = EventRing(batch_size)
    stream_events = 0
    sequence = 0
    try:
        while True:
            limit = None
            if window is not None:
                limit = evict_every - events_since_evict
            count = ring.refill(stream, limit)
            if count == 0:
                break
            transport.allowed = PRODUCES["publish"]
            times = ring.times
            kinds = ring.targets
            payloads = ring.payloads
            for i in range(count):
                if kinds[i] != "tuple":
                    raise ShardError(
                        "query subscriptions after the stream began are "
                        "not supported in sharded execution"
                    )
                time = times[i]
                clock.advance_to(time)
                origin = network.random_node(rng)
                sequence += 1
                transport.begin((sequence,), time)
                relation, values = payloads[i]
                engine.publish(origin, relation, values)
            stream_events += count
            events_since_evict += count
            if PERF.enabled:
                PERF.count("shard.epochs")
                PERF.count("shard.batch.events", count)
            stage_a, stage_b, stage_c, candidates = transport.drain()
            if stage_c or candidates:  # pragma: no cover - protocol guard
                raise ShardError("publishing produced post-barrier work")
            produced, candidates_a = run_stage("A", stage_a)
            misplaced, joins = split_stages(produced)
            if misplaced:  # pragma: no cover - protocol guard
                raise ShardError("stage A produced attribute-level messages")
            produced_b, candidates_b = run_stage("B", stage_b + joins)
            if produced_b:  # pragma: no cover - protocol guard
                raise ShardError("stage B produced staged messages")
            stage_c_items = resolver.resolve(
                candidates_a + candidates_b, network.stats
            )
            produced_c, candidates_c = run_stage("C", stage_c_items)
            if produced_c or candidates_c:  # pragma: no cover - protocol guard
                raise ShardError("stage C produced further work")
            if window is not None and events_since_evict >= evict_every:
                evictions += barrier_evict()
                events_since_evict = 0
        ring.clear()
        if window is not None:
            # The serial replay's unconditional final sweep.
            evictions += barrier_evict()

        # --------------------------------------------------------------
        # Merge
        # --------------------------------------------------------------
        if pool is None:
            delivered = delivered_pairs(engine)
            duplicate_deliveries = engine.duplicate_deliveries
            stream_snapshot = network.stats.since(install_snapshot)
        else:
            for shard in range(shards):
                pool.send(shard, ("finish",))
            delivered = {}
            duplicate_deliveries = engine.duplicate_deliveries
            stream_snapshot = network.stats.since(install_snapshot)
            for reply in pool.gather():
                if reply[0] == "error":
                    raise ShardError(f"shard worker failed:\n{reply[1]}")
                _, delta, worker_delivered, worker_duplicates = reply
                delivered.update(worker_delivered)
                duplicate_deliveries += worker_duplicates
                stream_snapshot = TrafficSnapshot(
                    hops=stream_snapshot.hops + delta.hops,
                    messages=stream_snapshot.messages + delta.messages,
                    hops_by_type=_merge_counts(
                        stream_snapshot.hops_by_type, delta.hops_by_type
                    ),
                    messages_by_type=_merge_counts(
                        stream_snapshot.messages_by_type, delta.messages_by_type
                    ),
                    messages_dropped=stream_snapshot.messages_dropped
                    + delta.messages_dropped,
                    retries=stream_snapshot.retries + delta.retries,
                    messages_delayed=stream_snapshot.messages_delayed
                    + delta.messages_delayed,
                )
    finally:
        network.use_transport(previous_transport)
        engine.notification_gateway = None
        if pool is not None:
            pool.close()

    return ShardRunResult(
        install_traffic=install_snapshot,
        stream_traffic=stream_snapshot,
        notifications_delivered=sum(len(pairs) for pairs in delivered.values()),
        notification_digest=digest_of_pairs(delivered),
        suppressed_renotifications=engine.suppressed_renotifications
        + resolver.suppressed,
        duplicate_deliveries=duplicate_deliveries,
        events=install_events + stream_events,
        shards=shards,
        evictions=evictions,
        exchange_records=exchange_records,
        features=features,
    )


def _merge_counts(left: dict, right: dict) -> dict:
    merged = dict(left)
    for key, value in right.items():
        merged[key] = merged.get(key, 0) + value
    return merged
