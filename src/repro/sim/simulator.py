"""The discrete-event simulator driving a Chord network.

Combines the :class:`~repro.sim.clock.LogicalClock`, the
:class:`~repro.sim.events.EventQueue` and a
:class:`~repro.chord.network.ChordNetwork` into a runnable simulation.
The query-processing engine schedules workload events here; periodic
behaviours (stabilization rounds, window eviction) are supported through
:meth:`every`.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable, Iterable, Iterator

from .clock import LogicalClock
from .events import Action, EventQueue, EventRing

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..chord.network import ChordNetwork
    from ..core.engine import ContinuousQueryEngine
    from ..faults.injector import FaultInjector
    from ..faults.recovery import ChaosHarness


class Simulator:
    """Run scheduled actions against a network in timestamp order."""

    def __init__(self, network: "ChordNetwork", clock: LogicalClock | None = None):
        self.network = network
        self.clock = clock if clock is not None else LogicalClock()
        self.queue = EventQueue()
        self.events_executed = 0

    @property
    def now(self) -> float:
        """Current simulation time."""
        return self.clock.now

    # ------------------------------------------------------------------
    # Scheduling
    # ------------------------------------------------------------------
    def at(self, time: float, action: Action, label: str = "") -> None:
        """Schedule ``action`` at absolute time ``time``."""
        if time < self.clock.now:
            raise ValueError(
                f"cannot schedule at {time}: simulation time is already "
                f"{self.clock.now}"
            )
        self.queue.push(time, action, label)

    def after(self, delay: float, action: Action, label: str = "") -> None:
        """Schedule ``action`` ``delay`` time units from now."""
        self.at(self.clock.now + delay, action, label)

    def every(
        self,
        period: float,
        action: Action,
        *,
        start: float | None = None,
        until: float | None = None,
        label: str = "",
    ) -> None:
        """Schedule ``action`` periodically (e.g. stabilization rounds).

        The recurrence stops when ``until`` is reached or, if ``until``
        is ``None``, keeps rescheduling for as long as the simulation is
        run with an explicit horizon (:meth:`run_until`).
        """
        if period <= 0:
            raise ValueError("period must be positive")
        first = self.clock.now + period if start is None else start

        def fire() -> None:
            action()
            next_time = self.clock.now + period
            if until is None or next_time <= until:
                self.queue.push(next_time, fire, label)

        if until is None or first <= until:
            self.queue.push(first, fire, label)

    # ------------------------------------------------------------------
    # Fault injection
    # ------------------------------------------------------------------
    def attach_faults(
        self,
        injector: "FaultInjector",
        engine: "ContinuousQueryEngine | None" = None,
        protect=(),
        *,
        until: float | None = None,
    ) -> "ChaosHarness | None":
        """Consult ``injector`` for churn, delays and lease refreshes.

        Injected delivery delays become timed events of this simulator,
        and the plan's ``crash_every`` / ``restart_after`` /
        ``lease_refresh_every`` knobs are scheduled as periodic events
        (victims never come from ``protect``).  Returns the
        :class:`~repro.faults.recovery.ChaosHarness` driving the churn.
        """
        from ..faults.schedule import install_fault_plan

        return install_fault_plan(
            self, injector, engine=engine, protect=protect, until=until
        )

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def step(self) -> bool:
        """Execute the next event; returns False when the queue is empty."""
        if not self.queue:
            return False
        event = self.queue.pop()
        self.clock.advance_to(event.time)
        event.action()
        self.events_executed += 1
        return True

    def run(self, max_events: int | None = None) -> int:
        """Drain the queue (optionally at most ``max_events`` events)."""
        executed = 0
        while self.queue:
            if max_events is not None and executed >= max_events:
                break
            self.step()
            executed += 1
        return executed

    def run_stream(
        self,
        events: Iterable[tuple[float, object, object]],
        handler: Callable[[object, object], None],
        *,
        batch: int = 4096,
    ) -> int:
        """Dispatch a monotone-time event stream through a reused ring.

        The streaming counterpart of :meth:`run`: ``events`` yields
        ``(time, target, payload)`` triples in non-decreasing time
        order (e.g. from
        :func:`repro.workload.generator.iter_workload_events`); each is
        executed as ``handler(target, payload)`` after advancing the
        clock, exactly as a heap-scheduled event would be — but through
        an :class:`~repro.sim.events.EventRing` refilled ``batch``
        events at a time, so a million-tuple workload never exists as a
        million ``Event`` objects (or as a list at all).

        Returns the number of events dispatched.  The scheduled-event
        queue is untouched; mixing ``run_stream`` with pending queued
        events is the caller's responsibility.
        """
        ring = EventRing(batch)
        source: Iterator[tuple[float, object, object]] = iter(events)
        clock = self.clock
        total = 0
        while True:
            count = ring.refill(source)
            if not count:
                break
            times = ring.times
            targets = ring.targets
            payloads = ring.payloads
            for index in range(count):
                clock.advance_to(times[index])
                handler(targets[index], payloads[index])
            total += count
        ring.clear()
        self.events_executed += total
        return total

    def run_until(self, horizon: float) -> int:
        """Run events with timestamps ``<= horizon`` then park the clock
        at ``horizon``."""
        executed = 0
        while self.queue:
            next_time = self.queue.peek_time()
            if next_time is None or next_time > horizon:
                break
            self.step()
            executed += 1
        self.clock.advance_to(horizon)
        return executed


def schedule_stabilization(simulator: Simulator, period: float, *, until: float | None = None) -> None:
    """Convenience: run one network-wide stabilization round per period."""
    simulator.every(
        period,
        lambda: simulator.network.run_stabilization(1),
        until=until,
        label="stabilization",
    )
