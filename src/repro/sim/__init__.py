"""Discrete-event simulation substrate (clock, events, stats, messages)."""

from .clock import LogicalClock
from .events import Event, EventQueue
from .simulator import Simulator, schedule_stabilization
from .stats import (
    NodeLoad,
    TrafficStats,
    TrafficSnapshot,
    gini,
    participation,
    percentile_series,
    sorted_loads,
    top_share,
)

__all__ = [
    "Event",
    "EventQueue",
    "LogicalClock",
    "NodeLoad",
    "Simulator",
    "TrafficSnapshot",
    "TrafficStats",
    "gini",
    "participation",
    "percentile_series",
    "schedule_stabilization",
    "sorted_loads",
    "top_share",
]
