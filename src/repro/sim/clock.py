"""Logical time for the simulation.

The paper assumes nodes "have synchronized clocks" (Section 3.1, via
NTP), so a single logical clock serves the whole network.  Publication
times ``pubT(t)`` and insertion times ``insT(q)`` are read off this
clock; the triggering rule ``pubT(t) >= insT(q)`` (Section 3.2) and the
sliding measurement windows of the experiments both depend on it.
"""

from __future__ import annotations


class LogicalClock:
    """A monotonically non-decreasing logical clock."""

    __slots__ = ("_now",)

    def __init__(self, start: float = 0.0):
        self._now = float(start)

    @property
    def now(self) -> float:
        """Current simulation time."""
        return self._now

    def advance(self, delta: float) -> float:
        """Move time forward by ``delta`` (must be non-negative)."""
        if delta < 0:
            raise ValueError(f"clock cannot move backwards (delta={delta})")
        self._now += delta
        return self._now

    def advance_to(self, timestamp: float) -> float:
        """Jump forward to ``timestamp`` (no-op if already past it)."""
        if timestamp > self._now:
            self._now = float(timestamp)
        return self._now

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"LogicalClock(now={self._now})"
