"""Packaging shim.

pip in the offline evaluation environment lacks the ``wheel`` package,
so modern (PEP 660) editable installs fail.  Keeping the metadata in
``setup.py`` lets ``pip install -e .`` use the legacy editable path,
which needs nothing beyond setuptools.
"""

from setuptools import find_packages, setup

setup(
    name="repro",
    version="1.0.0",
    description=(
        "Continuous two-way equi-join queries over Chord "
        "(reproduction of Idreos et al., ICDE 2006)"
    ),
    python_requires=">=3.10",
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    install_requires=["numpy>=1.24"],
    extras_require={"test": ["pytest>=7", "pytest-benchmark>=4", "hypothesis>=6"]},
    entry_points={"console_scripts": ["repro-experiments=repro.bench.cli:main"]},
)
